// SPDX-License-Identifier: MIT
#include "rand/alias.hpp"

#include <cmath>
#include <stdexcept>

namespace cobra {

void build_alias_row(std::span<const float> weights, float* prob,
                     std::uint32_t* alias, AliasScratch& scratch) {
  const std::size_t d = weights.size();
  if (d == 1) {
    prob[0] = 1.0f;
    alias[0] = 0;
    return;
  }
  // Scale so the mean bucket mass is 1: scaled[i] = w[i] * d / W. The sum
  // runs in double, so float weights cannot lose mass to cancellation.
  double total = 0.0;
  for (const float w : weights) total += w;
  scratch.scaled.resize(d);
  scratch.small.clear();
  scratch.large.clear();
  const double scale = static_cast<double>(d) / total;
  for (std::size_t i = 0; i < d; ++i) {
    const double s = weights[i] * scale;
    scratch.scaled[i] = s;
    if (s < 1.0) {
      scratch.small.push_back(static_cast<std::uint32_t>(i));
    } else {
      scratch.large.push_back(static_cast<std::uint32_t>(i));
    }
  }
  // Vose pairing: each underfull slot is topped up by exactly one
  // overfull outcome; the donor's residue re-enters whichever stack its
  // remaining mass puts it in.
  while (!scratch.small.empty() && !scratch.large.empty()) {
    const std::uint32_t s = scratch.small.back();
    scratch.small.pop_back();
    const std::uint32_t l = scratch.large.back();
    scratch.large.pop_back();
    prob[s] = static_cast<float>(scratch.scaled[s]);
    alias[s] = l;
    scratch.scaled[l] -= 1.0 - scratch.scaled[s];
    if (scratch.scaled[l] < 1.0) {
      scratch.small.push_back(l);
    } else {
      scratch.large.push_back(l);
    }
  }
  // Leftovers have mass 1 up to rounding; saturate them.
  for (const std::uint32_t i : scratch.large) {
    prob[i] = 1.0f;
    alias[i] = i;
  }
  for (const std::uint32_t i : scratch.small) {
    prob[i] = 1.0f;
    alias[i] = i;
  }
}

namespace {

template <typename T>
std::vector<float> validated_weights(std::span<const T> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("AliasTable requires >= 1 weight");
  }
  std::vector<float> out;
  out.reserve(weights.size());
  for (const T w : weights) {
    const auto f = static_cast<float>(w);
    if (!std::isfinite(f) || !(f > 0.0f)) {
      throw std::invalid_argument(
          "AliasTable weights must be positive and finite");
    }
    out.push_back(f);
  }
  return out;
}

}  // namespace

AliasTable::AliasTable(std::span<const float> weights) {
  const std::vector<float> w = validated_weights(weights);
  prob_.resize(w.size());
  alias_.resize(w.size());
  AliasScratch scratch;
  build_alias_row(w, prob_.data(), alias_.data(), scratch);
}

AliasTable::AliasTable(std::span<const double> weights) {
  const std::vector<float> w = validated_weights(weights);
  prob_.resize(w.size());
  alias_.resize(w.size());
  AliasScratch scratch;
  build_alias_row(w, prob_.data(), alias_.data(), scratch);
}

double AliasTable::outcome_probability(std::uint32_t outcome) const {
  // Slot i contributes prob[i]/d to outcome i and (1-prob[i])/d to its
  // alias — sum the masses that land on `outcome`.
  const double inv_d = 1.0 / static_cast<double>(prob_.size());
  double mass = 0.0;
  for (std::size_t i = 0; i < prob_.size(); ++i) {
    if (i == outcome) mass += prob_[i] * inv_d;
    if (alias_[i] == outcome) mass += (1.0 - prob_[i]) * inv_d;
  }
  return mass;
}

}  // namespace cobra
