// SPDX-License-Identifier: MIT
//
// Vose alias tables: O(1) draws from an arbitrary discrete distribution
// after an O(d) build (Vose 1991, the numerically robust formulation of
// Walker's alias method).
//
// Layout: for a distribution over d outcomes, the table stores per slot a
// float acceptance probability `prob[i]` and an alias index `alias[i]`.
// A draw picks slot i uniformly, then keeps i with probability prob[i]
// and takes alias[i] otherwise — one slot pick plus one coin (O(1)),
// whatever d is. The weighted graph substrate builds one
// such table per vertex over the CSR weight array (graph/graph.hpp caches
// them lazily); the free-standing AliasTable class below is the same
// machinery for generic consumers and for the distributional tests.
//
// Acceptance probabilities are stored as float: the build runs in double
// and rounds once at the end, so per-outcome probabilities are exact to
// ~1e-7 relative — far below what any chi-square on a feasible sample
// count can resolve, at half the table footprint.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rand/rng.hpp"

namespace cobra {

/// Scratch buffers for build_alias_row — callers building many rows (the
/// per-vertex graph tables) reuse one instance to stay allocation-free in
/// steady state.
struct AliasScratch {
  std::vector<double> scaled;
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
};

/// Builds one alias row over `weights` (all finite and > 0; d >= 1) into
/// prob/alias (both length d, overwritten). After the build, outcome j is
/// drawn with probability weights[j] / sum(weights) exactly (up to the one
/// float rounding of prob).
void build_alias_row(std::span<const float> weights, float* prob,
                     std::uint32_t* alias, AliasScratch& scratch);

/// Free-standing alias table over one distribution.
class AliasTable {
 public:
  /// Builds from positive finite weights (throws std::invalid_argument on
  /// an empty span or a non-positive/non-finite entry).
  explicit AliasTable(std::span<const float> weights);
  explicit AliasTable(std::span<const double> weights);

  std::size_t size() const noexcept { return prob_.size(); }

  /// One O(1) draw: index in [0, size()). A uniform slot pick (one draw
  /// plus Lemire's rare rejection redraws) then the alias coin — the
  /// same fixed sequence the graph processes use
  /// (GraphAliasTables::draw_index), so results are reproducible across
  /// consumers.
  std::uint32_t draw(Rng& rng) const noexcept {
    const std::uint32_t i =
        rng.next_below32(static_cast<std::uint32_t>(prob_.size()));
    return rng.next_double() < prob_[i] ? i : alias_[i];
  }

  /// Exact per-outcome probability implied by the table (sums the slot
  /// masses); tests compare this against weights[j] / sum(weights).
  double outcome_probability(std::uint32_t outcome) const;

  std::span<const float> prob() const noexcept { return prob_; }
  std::span<const std::uint32_t> alias() const noexcept { return alias_; }

 private:
  std::vector<float> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace cobra
