// SPDX-License-Identifier: MIT
//
// Structure-of-arrays xoshiro256++ lanes for the batched trial engine
// (sim/batched.hpp). Lane l carries the state of an independent Rng
// stream; the batched engine seeds lane l to Rng::for_trial(base, first+l)
// so every lane replays, draw for draw, the exact stream the scalar trial
// runner hands trial first+l. The state lives in four lane-indexed arrays
// (not an array of Rng), so the all-lane bulk draws below are plain
// fixed-stride loops with no cross-lane dependencies — the compiler
// autovectorizes the four-word xoshiro update (verified with
// -fopt-info-vec on GCC); the explicit-width scalar helpers are the
// fallback for masked lanes and for the rare Lemire rejection resample.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "rand/rng.hpp"

namespace cobra {

class LaneRngs {
 public:
  /// Lane membership masks are single uint64 words.
  static constexpr std::size_t kMaxLanes = 64;

  explicit LaneRngs(std::size_t lanes) noexcept
      : lanes_(lanes <= kMaxLanes ? lanes : kMaxLanes) {}

  std::size_t lanes() const noexcept { return lanes_; }

  /// Reseeds lane l to the exact state of Rng::for_trial(base, first + l)
  /// for l in [0, lanes()).
  void seed_trials(std::uint64_t base, std::uint64_t first) noexcept {
    for (std::size_t l = 0; l < lanes_; ++l) {
      const Rng rng = Rng::for_trial(base, first + l);
      const auto& st = rng.state();
      s0_[l] = st[0];
      s1_[l] = st[1];
      s2_[l] = st[2];
      s3_[l] = st[3];
    }
  }

  /// One 64-bit draw from lane l — bit-identical to Rng::operator()().
  std::uint64_t next(std::size_t l) noexcept {
    const std::uint64_t result = rotl(s0_[l] + s3_[l], 23) + s0_[l];
    const std::uint64_t t = s1_[l] << 17;
    s2_[l] ^= s0_[l];
    s3_[l] ^= s1_[l];
    s1_[l] ^= s2_[l];
    s0_[l] ^= s3_[l];
    s2_[l] ^= t;
    s3_[l] = rotl(s3_[l], 45);
    return result;
  }

  /// Lemire 32-bit bounded draw on lane l — bit-identical to
  /// Rng::next_below32 (same rejection rule). Precondition: bound > 0.
  std::uint32_t next_below32(std::size_t l, std::uint32_t bound) noexcept {
    auto x = static_cast<std::uint32_t>(next(l) >> 32);
    std::uint64_t m = static_cast<std::uint64_t>(x) * bound;
    auto low = static_cast<std::uint32_t>(m);
    if (low < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (low < threshold) {
        x = static_cast<std::uint32_t>(next(l) >> 32);
        m = static_cast<std::uint64_t>(x) * bound;
        low = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform double in [0,1) on lane l — bit-identical to
  /// Rng::next_double().
  double next_double(std::size_t l) noexcept {
    return static_cast<double>(next(l) >> 11) * 0x1.0p-53;
  }

  /// Bulk draw: one 64-bit word per lane into out[0..lanes()). Per-lane
  /// streams are identical to calling next(l) once per lane.
  void next_all(std::uint64_t* out) noexcept {
    for (std::size_t l = 0; l < lanes_; ++l) out[l] = next(l);
  }

  /// Bulk Lemire draw with a shared bound: every lane draws once into
  /// out[0..lanes()). The common path is the branch-free lane loop above;
  /// lanes that hit the (rare) rejection window resample through the
  /// scalar path, so each lane's draw sequence stays bit-identical to the
  /// scalar engine's. Precondition: bound > 0.
  void fill_below32(std::uint32_t bound, std::uint32_t* out) noexcept {
    std::uint64_t words[kMaxLanes];
    next_all(words);
    std::uint64_t maybe = 0;  // lanes whose low half entered the window
    for (std::size_t l = 0; l < lanes_; ++l) {
      const auto x = static_cast<std::uint32_t>(words[l] >> 32);
      const std::uint64_t m = static_cast<std::uint64_t>(x) * bound;
      out[l] = static_cast<std::uint32_t>(m >> 32);
      maybe |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(m) < bound)
               << l;
    }
    if (maybe == 0) return;
    const std::uint32_t threshold = (0u - bound) % bound;
    while (maybe != 0) {
      const auto l = static_cast<std::size_t>(std::countr_zero(maybe));
      maybe &= maybe - 1;
      auto x = static_cast<std::uint32_t>(words[l] >> 32);
      std::uint64_t m = static_cast<std::uint64_t>(x) * bound;
      auto low = static_cast<std::uint32_t>(m);
      while (low < threshold) {
        x = static_cast<std::uint32_t>(next(l) >> 32);
        m = static_cast<std::uint64_t>(x) * bound;
        low = static_cast<std::uint32_t>(m);
      }
      out[l] = static_cast<std::uint32_t>(m >> 32);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  alignas(64) std::uint64_t s0_[kMaxLanes];
  alignas(64) std::uint64_t s1_[kMaxLanes];
  alignas(64) std::uint64_t s2_[kMaxLanes];
  alignas(64) std::uint64_t s3_[kMaxLanes];
  std::size_t lanes_;
};

}  // namespace cobra
