// SPDX-License-Identifier: MIT
//
// Pseudo-random number substrate for the cobra library.
//
// Monte Carlo experiments in this repository need (a) speed — a COBRA/BIPS
// round draws O(k n) random neighbours, (b) reproducibility — every trial is
// addressed by a (base seed, trial index) pair, and (c) independent parallel
// streams — the trial runner hands each worker its own statistically
// independent generator. std::mt19937_64 satisfies none of these well, so we
// implement xoshiro256++ (Blackman & Vigna, 2019) seeded via SplitMix64,
// with the canonical jump() / long_jump() stream-splitting functions.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace cobra {

/// SplitMix64 — a tiny, high-quality 64-bit generator used to expand a
/// single seed into the 256-bit state of Xoshiro256. Also usable standalone
/// (it is a bijective mixing function, so distinct seeds give distinct
/// streams).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ — the library's workhorse generator.
///
/// Satisfies the C++ UniformRandomBitGenerator concept, so it can also be
/// plugged into <random> distributions where convenient, but the member
/// helpers (next_below, next_double, bernoulli) are preferred: they are
/// branch-light and deterministic across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state by iterating SplitMix64, per Vigna's
  /// recommendation. Any 64-bit seed (including 0) is valid.
  explicit Rng(std::uint64_t seed = 0x9d1a5e2b8f3c47d6ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  /// Convenience: generator for trial `index` of a run with base seed
  /// `base`. Distinct (base, index) pairs produce independent streams
  /// because the 128-bit input is mixed through SplitMix64 twice.
  static Rng for_trial(std::uint64_t base, std::uint64_t index) noexcept {
    SplitMix64 sm(base ^ (0x632be59bd9b4e019ULL * (index + 1)));
    return Rng(sm.next());
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 uniformly distributed bits.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection
  /// method. Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Fast path for 32-bit bounds (vertex degrees always fit): Lemire's
  /// method on the high 32 bits of one 64-bit draw, so the hot loop costs a
  /// single 32x32 -> 64-bit multiply instead of the 128-bit product of
  /// next_below. Exactly unbiased (same rejection rule, 32-bit threshold).
  /// Precondition: bound > 0.
  std::uint32_t next_below32(std::uint32_t bound) noexcept {
    auto x = static_cast<std::uint32_t>((*this)() >> 32);
    std::uint64_t m = static_cast<std::uint64_t>(x) * bound;
    auto low = static_cast<std::uint32_t>(m);
    if (low < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (low < threshold) {
        x = static_cast<std::uint32_t>((*this)() >> 32);
        m = static_cast<std::uint64_t>(x) * bound;
        low = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p) trial; p outside [0,1] saturates to always-false/true.
  bool bernoulli(double p) noexcept { return next_double() < p; }

  /// Advances the stream by 2^128 steps; used to split one seed into many
  /// parallel streams with guaranteed non-overlap.
  void jump() noexcept;

  /// Advances the stream by 2^192 steps (splits into streams of jumps).
  void long_jump() noexcept;

  /// Exposes state for serialization / tests.
  const std::array<std::uint64_t, 4>& state() const noexcept { return state_; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace cobra
