// SPDX-License-Identifier: MIT
#include "rand/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace cobra {

std::vector<std::uint32_t> random_permutation(std::size_t n, Rng& rng) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  shuffle(std::span<std::uint32_t>(perm), rng);
  return perm;
}

std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                      std::size_t k,
                                                      Rng& rng) {
  // Floyd's algorithm: for j = n-k .. n-1, draw t in [0, j]; insert t if
  // unseen, else insert j. Gives a uniform k-subset with exactly k draws.
  std::vector<std::uint64_t> out;
  out.reserve(k);
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = rng.next_below(j + 1);
    if (std::find(out.begin(), out.end(), t) == out.end()) {
      out.push_back(t);
    } else {
      out.push_back(j);
    }
  }
  return out;
}

std::vector<std::uint64_t> sample_with_replacement(std::uint64_t n,
                                                   std::size_t k, Rng& rng) {
  std::vector<std::uint64_t> out(k);
  for (auto& value : out) value = rng.next_below(n);
  return out;
}

std::uint64_t binomial(std::uint64_t n, double p, Rng& rng) {
  if (p <= 0.0 || n == 0) return 0;
  if (p >= 1.0) return n;
  // Symmetry: sample the smaller tail.
  if (p > 0.5) return n - binomial(n, 1.0 - p, rng);
  // Waiting-time method: the gap between successes is Geometric(p); skip
  // through [0, n) in expected np + 1 iterations.
  const double log_q = std::log1p(-p);
  std::uint64_t count = 0;
  double position = 0.0;
  while (true) {
    const double u = 1.0 - rng.next_double();  // u in (0, 1]
    position += std::floor(std::log(u) / log_q) + 1.0;
    if (position > static_cast<double>(n)) break;
    ++count;
  }
  return count;
}

}  // namespace cobra
