// SPDX-License-Identifier: MIT
#include "rand/rng.hpp"

namespace cobra {

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire (2019): multiply a 64-bit draw by the bound and keep the high
  // word; reject the short "overhanging" low-word range to remove bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

namespace {
// Jump polynomials from the reference xoshiro256 implementation.
constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                   0xa9582618e03fc9aaULL,
                                   0x39abdc4529b1661cULL};
constexpr std::uint64_t kLongJump[] = {
    0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
    0x39109bb02acbe635ULL};
}  // namespace

void Rng::jump() noexcept {
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t poly : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (poly & (1ULL << b)) {
        for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
      }
      (*this)();
    }
  }
  state_ = acc;
}

void Rng::long_jump() noexcept {
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t poly : kLongJump) {
    for (int b = 0; b < 64; ++b) {
      if (poly & (1ULL << b)) {
        for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
      }
      (*this)();
    }
  }
  state_ = acc;
}

}  // namespace cobra
