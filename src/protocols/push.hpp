// SPDX-License-Identifier: MIT
//
// Classic synchronous push rumour spreading: every *informed* vertex pushes
// to one uniform neighbour each round and stays informed forever. The
// paper's introduction positions COBRA against this protocol: push covers
// expanders in O(log n) rounds but its per-round message count grows to n,
// while COBRA caps transmissions at k per active vertex and deactivates
// senders. Experiment E12 quantifies the message-budget difference.
#pragma once

#include "core/process.hpp"
#include "core/process_common.hpp"
#include "graph/graph.hpp"
#include "rand/rng.hpp"

namespace cobra {

struct PushOptions {
  std::size_t max_rounds = 1u << 20;
  bool record_curve = true;
  /// Weighted neighbour choice via the graph's alias tables (requires a
  /// weighted graph); false keeps the uniform draw and its RNG stream.
  bool weighted = false;
};

/// Steppable push with a reusable workspace: the informed bitmap and list
/// are sized once at construction and refilled on reset, so trial loops
/// pay zero allocations after the first trial. Single-start; the RNG
/// stream is draw-for-draw identical to the legacy run_push (senders are
/// processed in ascending vertex order each round — the informed list is
/// kept sorted, which is also what lets the batched engine's
/// vertex-ordered bit-plane scan replay the exact same stream).
class PushProcess final : public Process {
 public:
  /// Requires a non-empty graph; reset() validates the start.
  explicit PushProcess(const Graph& g, PushOptions options = {});

  bool done() const override {
    return informed_list_.size() == graph_->num_vertices() ||
           round_ >= options_.max_rounds;
  }
  std::size_t round() const override { return round_; }
  std::size_t reached_count() const override { return informed_list_.size(); }
  /// Working set = the informed senders of the next round.
  std::size_t active_count() const override { return informed_list_.size(); }
  bool completed() const override {
    return informed_list_.size() == graph_->num_vertices();
  }
  std::uint64_t total_transmissions() const override { return transmissions_; }
  std::uint64_t peak_vertex_round_transmissions() const override {
    return peak_;  // 1 after any round: every sender sends exactly once
  }
  std::size_t round_limit() const override { return options_.max_rounds; }

  const Graph& graph() const noexcept { return *graph_; }
  const PushOptions& options() const noexcept { return options_; }

 protected:
  void do_reset(std::span<const Vertex> starts) override;
  void do_step(Rng& rng) override;
  bool curve_enabled() const override { return options_.record_curve; }

 private:
  /// Fault-aware round (core/faults.hpp): down senders skip the round
  /// (informed membership is monotone, so nothing needs freezing), lost
  /// or receiver-blocked pushes inform no one, and transmissions count
  /// the sends actually made.
  void step_faulty(Rng& rng);

  /// Sorts the round's new informees and merges them into the (sorted)
  /// informed list in place. Allocation-free: both vectors are reserved
  /// to n.
  void merge_new_informed();

  const Graph* graph_;
  PushOptions options_;
  /// Alias tables for weighted draws; null when unweighted.
  const GraphAliasTables* alias_ = nullptr;
  std::vector<char> informed_;
  /// Ascending informed vertices (the next round's senders, in order).
  std::vector<Vertex> informed_list_;
  /// Scratch: vertices first informed this round, merged at round end.
  std::vector<Vertex> new_informed_;
  std::size_t round_ = 0;
  std::uint64_t transmissions_ = 0;
  std::uint64_t peak_ = 0;
};

/// Legacy one-shot entry point (allocates per call). Kept verbatim as the
/// parity oracle for PushProcess (tests/process_test.cpp); prefer the
/// factory + PushProcess for anything hot.
SpreadResult run_push(const Graph& g, Vertex start, PushOptions options,
                      Rng& rng);

}  // namespace cobra
