// SPDX-License-Identifier: MIT
//
// Classic synchronous push rumour spreading: every *informed* vertex pushes
// to one uniform neighbour each round and stays informed forever. The
// paper's introduction positions COBRA against this protocol: push covers
// expanders in O(log n) rounds but its per-round message count grows to n,
// while COBRA caps transmissions at k per active vertex and deactivates
// senders. Experiment E12 quantifies the message-budget difference.
#pragma once

#include "core/process_common.hpp"
#include "graph/graph.hpp"
#include "rand/rng.hpp"

namespace cobra {

struct PushOptions {
  std::size_t max_rounds = 1u << 20;
};

/// Runs push until all informed (or max_rounds). curve[t] = informed count
/// at end of round t; transmissions per round = current informed count.
SpreadResult run_push(const Graph& g, Vertex start, PushOptions options,
                      Rng& rng);

}  // namespace cobra
