// SPDX-License-Identifier: MIT
#include "protocols/flood.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace cobra {

SpreadResult run_flood(const Graph& g, Vertex start, FloodOptions options) {
  const std::size_t n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("run_flood requires a non-empty graph");
  if (start >= n) throw std::invalid_argument("flood start out of range");

  std::vector<char> informed(n, 0);
  std::vector<Vertex> frontier{start};
  std::vector<Vertex> next_frontier;
  informed[start] = 1;
  std::size_t count = 1;

  SpreadResult result;
  result.curve.push_back(count);
  std::size_t round = 0;
  std::uint64_t informed_degree_sum = g.degree(start);
  while (count < n && !frontier.empty() && round < options.max_rounds) {
    // Every informed vertex sends to all neighbours; only frontier sends
    // can inform anyone new, but the message count charges everyone.
    result.total_transmissions += informed_degree_sum;
    next_frontier.clear();
    for (const Vertex v : frontier) {
      result.peak_vertex_round_transmissions = std::max(
          result.peak_vertex_round_transmissions,
          static_cast<std::uint64_t>(g.degree(v)));
      for (const Vertex w : g.neighbors(v)) {
        if (!informed[w]) {
          informed[w] = 1;
          next_frontier.push_back(w);
          informed_degree_sum += g.degree(w);
          ++count;
        }
      }
    }
    frontier.swap(next_frontier);
    ++round;
    result.curve.push_back(count);
  }
  result.completed = count == n;
  result.rounds = round;
  result.final_count = count;
  result.peak_vertex_round_transmissions =
      std::max<std::uint64_t>(result.peak_vertex_round_transmissions,
                              g.max_degree());
  return result;
}

}  // namespace cobra
