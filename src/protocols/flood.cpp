// SPDX-License-Identifier: MIT
#include "protocols/flood.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace cobra {

FloodProcess::FloodProcess(const Graph& g, FloodOptions options)
    : graph_(&g), options_(options), informed_(g.num_vertices(), 0) {
  if (g.num_vertices() == 0) {
    throw std::invalid_argument("FloodProcess requires a non-empty graph");
  }
  frontier_.reserve(g.num_vertices());
  next_frontier_.reserve(g.num_vertices());
}

std::uint64_t FloodProcess::peak_vertex_round_transmissions() const {
  // Under faults a down hub genuinely sends nothing, so report the actual
  // peak; the faults-off accounting keeps the legacy max-degree floor.
  if (fault_session() != nullptr) return peak_;
  return std::max<std::uint64_t>(peak_, graph_->max_degree());
}

void FloodProcess::do_reset(std::span<const Vertex> starts) {
  if (starts.size() != 1) {
    throw std::invalid_argument("flood is a single-start process");
  }
  const Vertex start = starts.front();
  if (start >= graph_->num_vertices()) {
    throw std::invalid_argument("flood start out of range");
  }
  std::fill(informed_.begin(), informed_.end(), char{0});
  frontier_.clear();
  next_frontier_.clear();
  informed_[start] = 1;
  frontier_.push_back(start);
  informed_degree_sum_ = graph_->degree(start);
  count_ = 1;
  round_ = 0;
  transmissions_ = 0;
  peak_ = 0;
}

void FloodProcess::do_step(Rng& rng) {
  if (faults() != nullptr) {
    step_faulty(rng);
    return;
  }
  const Graph& g = *graph_;
  // Every informed vertex sends to all neighbours; only frontier sends
  // can inform anyone new, but the message count charges everyone.
  transmissions_ += informed_degree_sum_;
  next_frontier_.clear();
  for (const Vertex v : frontier_) {
    peak_ = std::max(peak_, static_cast<std::uint64_t>(g.degree(v)));
    for (const Vertex w : g.neighbors(v)) {
      if (!informed_[w]) {
        informed_[w] = 1;
        next_frontier_.push_back(w);
        informed_degree_sum_ += g.degree(w);
        ++count_;
      }
    }
  }
  frontier_.swap(next_frontier_);
  ++round_;
}

void FloodProcess::step_faulty(Rng&) {
  FaultSession& fs = *faults();
  const Graph& g = *graph_;
  // frontier_ is the full informed list in fault mode (do_reset seeds it
  // with the start; every newly informed vertex is appended below). Only
  // the vertices informed at the start of the round send.
  const std::size_t senders = frontier_.size();
  std::uint64_t sends = 0;
  for (std::size_t i = 0; i < senders; ++i) {
    const Vertex v = frontier_[i];
    if (!fs.can_send(v)) continue;  // down: silent this round
    const auto degree = static_cast<std::uint64_t>(g.degree(v));
    peak_ = std::max(peak_, degree);
    sends += degree;
    std::uint32_t index = 0;
    for (const Vertex w : g.neighbors(v)) {
      if (fs.transmit(v, index++, w) && !informed_[w]) {
        informed_[w] = 1;
        frontier_.push_back(w);
        ++count_;
      }
    }
  }
  transmissions_ += sends;
  ++round_;
}

SpreadResult run_flood(const Graph& g, Vertex start, FloodOptions options) {
  const std::size_t n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("run_flood requires a non-empty graph");
  if (start >= n) throw std::invalid_argument("flood start out of range");

  std::vector<char> informed(n, 0);
  std::vector<Vertex> frontier{start};
  std::vector<Vertex> next_frontier;
  informed[start] = 1;
  std::size_t count = 1;

  SpreadResult result;
  result.curve.push_back(count);
  std::size_t round = 0;
  std::uint64_t informed_degree_sum = g.degree(start);
  while (count < n && !frontier.empty() && round < options.max_rounds) {
    result.total_transmissions += informed_degree_sum;
    next_frontier.clear();
    for (const Vertex v : frontier) {
      result.peak_vertex_round_transmissions = std::max(
          result.peak_vertex_round_transmissions,
          static_cast<std::uint64_t>(g.degree(v)));
      for (const Vertex w : g.neighbors(v)) {
        if (!informed[w]) {
          informed[w] = 1;
          next_frontier.push_back(w);
          informed_degree_sum += g.degree(w);
          ++count;
        }
      }
    }
    frontier.swap(next_frontier);
    ++round;
    result.curve.push_back(count);
  }
  result.completed = count == n;
  result.rounds = round;
  result.final_count = count;
  result.peak_vertex_round_transmissions =
      std::max<std::uint64_t>(result.peak_vertex_round_transmissions,
                              g.max_degree());
  return result;
}

}  // namespace cobra
