// SPDX-License-Identifier: MIT
#include "protocols/push_pull.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace cobra {

PushPullProcess::PushPullProcess(const Graph& g, PushPullOptions options)
    : graph_(&g),
      options_(options),
      informed_(g.num_vertices(), 0),
      next_(g.num_vertices(), 0) {
  if (g.num_vertices() == 0) {
    throw std::invalid_argument("PushPullProcess requires a non-empty graph");
  }
  if (options_.weighted) {
    if (!g.is_weighted()) {
      throw std::invalid_argument(
          "PushPullProcess weighted=true requires a weighted graph");
    }
    alias_ = &g.alias_tables();
  }
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    contactors_ += (g.degree(v) > 0);
  }
}

void PushPullProcess::do_reset(std::span<const Vertex> starts) {
  if (starts.size() != 1) {
    throw std::invalid_argument("push-pull is a single-start process");
  }
  const Vertex start = starts.front();
  if (start >= graph_->num_vertices()) {
    throw std::invalid_argument("push_pull start out of range");
  }
  // Isolated vertices make no contacts (skipped below); only the start
  // must have an edge.
  if (graph_->degree(start) == 0) {
    throw std::invalid_argument("push_pull start must have degree >= 1");
  }
  std::fill(informed_.begin(), informed_.end(), char{0});
  std::fill(next_.begin(), next_.end(), char{0});
  informed_[start] = 1;
  next_[start] = 1;
  count_ = 1;
  round_ = 0;
  transmissions_ = 0;
  peak_ = 0;
}

void PushPullProcess::do_step(Rng& rng) {
  if (faults() != nullptr) {
    step_faulty(rng);
    return;
  }
  const Graph& g = *graph_;
  const std::size_t n = g.num_vertices();
  // Synchronous semantics: all contacts are evaluated against the state
  // at the start of the round.
  std::size_t contacts = 0;
  for (Vertex v = 0; v < n; ++v) {
    const auto degree = static_cast<std::uint32_t>(g.degree(v));
    if (degree == 0) continue;  // isolated: no one to contact
    ++contacts;
    const Vertex w = alias_ != nullptr
                         ? alias_->draw(g, v, rng)
                         : g.neighbor(v, rng.next_below32(degree));
    if (informed_[v]) {
      next_[w] = 1;  // push
    } else if (informed_[w]) {
      next_[v] = 1;  // pull
    }
  }
  count_ = 0;
  for (Vertex v = 0; v < n; ++v) {
    informed_[v] = next_[v];
    count_ += static_cast<std::size_t>(next_[v]);
  }
  transmissions_ += contacts;
  peak_ = 1;
  ++round_;
}

void PushPullProcess::step_faulty(Rng& rng) {
  FaultSession& fs = *faults();
  const Graph& g = *graph_;
  const std::size_t n = g.num_vertices();
  std::size_t contacts = 0;
  for (Vertex v = 0; v < n; ++v) {
    const auto degree = static_cast<std::uint32_t>(g.degree(v));
    if (degree == 0) continue;
    if (informed_[v]) {
      if (!fs.can_send(v)) continue;  // down: no push
      ++contacts;
      const Vertex w = alias_ != nullptr
                           ? alias_->draw(g, v, rng)
                           : g.neighbor(v, rng.next_below32(degree));
      if (fs.transmit(v, 0, w)) next_[w] = 1;  // push delivered
    } else {
      // A pull is a request/response pair: v must be able to receive.
      if (!fs.can_receive(v)) continue;
      ++contacts;
      const Vertex w = alias_ != nullptr
                           ? alias_->draw(g, v, rng)
                           : g.neighbor(v, rng.next_below32(degree));
      if (fs.transmit(v, 0, w) && informed_[w]) next_[v] = 1;  // pull
    }
  }
  count_ = 0;
  for (Vertex v = 0; v < n; ++v) {
    informed_[v] = next_[v];
    count_ += static_cast<std::size_t>(next_[v]);
  }
  transmissions_ += contacts;
  if (contacts > 0) peak_ = 1;
  ++round_;
}

SpreadResult run_push_pull(const Graph& g, Vertex start,
                           PushPullOptions options, Rng& rng) {
  const std::size_t n = g.num_vertices();
  if (n == 0) {
    throw std::invalid_argument("run_push_pull requires a non-empty graph");
  }
  if (start >= n) throw std::invalid_argument("push_pull start out of range");
  if (g.degree(start) == 0) {
    throw std::invalid_argument("run_push_pull start must have degree >= 1");
  }

  std::vector<char> informed(n, 0);
  std::vector<char> next(n, 0);
  informed[start] = 1;
  next[start] = 1;
  std::size_t count = 1;

  SpreadResult result;
  result.curve.push_back(count);
  std::size_t round = 0;
  while (count < n && round < options.max_rounds) {
    std::size_t contacts = 0;
    for (Vertex v = 0; v < n; ++v) {
      const auto degree = static_cast<std::uint32_t>(g.degree(v));
      if (degree == 0) continue;
      ++contacts;
      const Vertex w = g.neighbor(v, rng.next_below32(degree));
      if (informed[v]) {
        next[w] = 1;  // push
      } else if (informed[w]) {
        next[v] = 1;  // pull
      }
    }
    count = 0;
    for (Vertex v = 0; v < n; ++v) {
      informed[v] = next[v];
      count += static_cast<std::size_t>(next[v]);
    }
    result.total_transmissions += contacts;
    result.peak_vertex_round_transmissions = 1;
    ++round;
    result.curve.push_back(count);
  }
  result.completed = count == n;
  result.rounds = round;
  result.final_count = count;
  return result;
}

}  // namespace cobra
