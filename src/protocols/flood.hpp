// SPDX-License-Identifier: MIT
//
// Synchronous flooding: every informed vertex forwards to ALL neighbours
// every round. Completes in exactly eccentricity(start) rounds — the
// round-count lower bound for any single-source dissemination — at the
// cost of Theta(m) messages per round. The message-budget extreme opposite
// of COBRA in experiment E12.
#pragma once

#include "core/process_common.hpp"
#include "graph/graph.hpp"

namespace cobra {

struct FloodOptions {
  std::size_t max_rounds = 1u << 20;
};

/// Deterministic; no RNG needed.
SpreadResult run_flood(const Graph& g, Vertex start, FloodOptions options);

}  // namespace cobra
