// SPDX-License-Identifier: MIT
//
// Synchronous flooding: every informed vertex forwards to ALL neighbours
// every round. Completes in exactly eccentricity(start) rounds — the
// round-count lower bound for any single-source dissemination — at the
// cost of Theta(m) messages per round. The message-budget extreme opposite
// of COBRA in experiment E12.
#pragma once

#include "core/process.hpp"
#include "core/process_common.hpp"
#include "graph/graph.hpp"

namespace cobra {

struct FloodOptions {
  std::size_t max_rounds = 1u << 20;
  bool record_curve = true;
};

/// Steppable flood with a reusable workspace (see PushProcess).
/// Deterministic: the RNG captured at reset() is never consumed, and a
/// dead frontier (disconnected remainder) makes done() true early.
class FloodProcess final : public Process {
 public:
  explicit FloodProcess(const Graph& g, FloodOptions options = {});

  bool done() const override {
    return count_ == graph_->num_vertices() || frontier_.empty() ||
           round_ >= options_.max_rounds;
  }
  std::size_t round() const override { return round_; }
  std::size_t reached_count() const override { return count_; }
  /// Working set = the BFS frontier (only its sends can inform anyone).
  std::size_t active_count() const override { return frontier_.size(); }
  bool completed() const override { return count_ == graph_->num_vertices(); }
  std::uint64_t total_transmissions() const override { return transmissions_; }
  /// Mirrors the legacy accounting: at least the graph's max degree (an
  /// informed hub transmits its whole neighbourhood every round).
  std::uint64_t peak_vertex_round_transmissions() const override;
  std::size_t round_limit() const override { return options_.max_rounds; }

  const Graph& graph() const noexcept { return *graph_; }
  const FloodOptions& options() const noexcept { return options_; }

 protected:
  void do_reset(std::span<const Vertex> starts) override;
  void do_step(Rng& rng) override;
  bool curve_enabled() const override { return options_.record_curve; }

 private:
  /// Fault-aware round (core/faults.hpp). Under faults the BFS shortcut
  /// (only frontier sends matter) is wrong — a lost edge message must be
  /// retried — so frontier_ is repurposed as the full informed list and
  /// EVERY up informed vertex re-sends to all neighbours each round
  /// (Theta(informed-degree) messages per round, the honest flooding
  /// cost). The list never empties, so done() reduces to full cover or
  /// the round budget; transmissions and the per-vertex peak count actual
  /// sends.
  void step_faulty(Rng& rng);

  const Graph* graph_;
  FloodOptions options_;
  std::vector<char> informed_;
  std::vector<Vertex> frontier_;
  std::vector<Vertex> next_frontier_;
  std::uint64_t informed_degree_sum_ = 0;
  std::size_t count_ = 0;
  std::size_t round_ = 0;
  std::uint64_t transmissions_ = 0;
  std::uint64_t peak_ = 0;
};

/// Legacy one-shot entry point — the parity oracle for FloodProcess.
/// Deterministic; no RNG needed.
SpreadResult run_flood(const Graph& g, Vertex start, FloodOptions options);

}  // namespace cobra
