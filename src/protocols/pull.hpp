// SPDX-License-Identifier: MIT
//
// Pull-only rumour spreading: each round every UNINFORMED vertex contacts
// one uniform neighbour and becomes informed iff that neighbour is
// informed. The mirror image of push — and structurally the closest
// classical protocol to BIPS (BIPS is "pull with k samples, re-sampled
// membership, and a persistent source"). Completes the protocol matrix of
// experiment E12.
#pragma once

#include "core/process.hpp"
#include "core/process_common.hpp"
#include "graph/graph.hpp"
#include "rand/rng.hpp"

namespace cobra {

struct PullOptions {
  std::size_t max_rounds = 1u << 20;
  bool record_curve = true;
  /// Weighted neighbour choice via the graph's alias tables (requires a
  /// weighted graph); false keeps the uniform draw and its RNG stream.
  bool weighted = false;
};

/// Steppable pull with a reusable workspace (see PushProcess). The RNG
/// stream is draw-for-draw identical to the legacy run_pull (uninformed
/// vertices contact in ascending order).
class PullProcess final : public Process {
 public:
  explicit PullProcess(const Graph& g, PullOptions options = {});

  bool done() const override {
    return count_ == graph_->num_vertices() || round_ >= options_.max_rounds;
  }
  std::size_t round() const override { return round_; }
  std::size_t reached_count() const override { return count_; }
  /// Working set = the uninformed contactors of the next round (upper
  /// bound: includes isolated vertices, which contact no one).
  std::size_t active_count() const override {
    return graph_->num_vertices() - count_;
  }
  bool completed() const override { return count_ == graph_->num_vertices(); }
  std::uint64_t total_transmissions() const override { return transmissions_; }
  std::uint64_t peak_vertex_round_transmissions() const override {
    return peak_;
  }
  std::size_t round_limit() const override { return options_.max_rounds; }

  const Graph& graph() const noexcept { return *graph_; }
  const PullOptions& options() const noexcept { return options_; }

 protected:
  void do_reset(std::span<const Vertex> starts) override;
  void do_step(Rng& rng) override;
  bool curve_enabled() const override { return options_.record_curve; }

 private:
  /// Fault-aware round (core/faults.hpp): a pull is a request/response
  /// pair, so a down or asleep vertex cannot contact anyone (it would not
  /// hear the response); one fault draw per contact decides the round
  /// trip. Informed membership stays monotone.
  void step_faulty(Rng& rng);

  const Graph* graph_;
  PullOptions options_;
  /// Alias tables for weighted draws; null when unweighted.
  const GraphAliasTables* alias_ = nullptr;
  std::vector<char> informed_;
  std::size_t count_ = 0;
  std::size_t round_ = 0;
  std::uint64_t transmissions_ = 0;
  std::uint64_t peak_ = 0;
};

/// Legacy one-shot entry point — the parity oracle for PullProcess.
SpreadResult run_pull(const Graph& g, Vertex start, PullOptions options,
                      Rng& rng);

}  // namespace cobra
