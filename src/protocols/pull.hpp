// SPDX-License-Identifier: MIT
//
// Pull-only rumour spreading: each round every UNINFORMED vertex contacts
// one uniform neighbour and becomes informed iff that neighbour is
// informed. The mirror image of push — and structurally the closest
// classical protocol to BIPS (BIPS is "pull with k samples, re-sampled
// membership, and a persistent source"). Completes the protocol matrix of
// experiment E12.
#pragma once

#include "core/process_common.hpp"
#include "graph/graph.hpp"
#include "rand/rng.hpp"

namespace cobra {

struct PullOptions {
  std::size_t max_rounds = 1u << 20;
};

SpreadResult run_pull(const Graph& g, Vertex start, PullOptions options,
                      Rng& rng);

}  // namespace cobra
