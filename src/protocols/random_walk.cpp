// SPDX-License-Identifier: MIT
#include "protocols/random_walk.hpp"

#include <algorithm>
#include <stdexcept>

namespace cobra {

RandomWalk::RandomWalk(const Graph& g, Vertex start)
    : graph_(&g), position_(start), first_visit_(g.num_vertices(), kRoundNever) {
  if (g.num_vertices() == 0) {
    throw std::invalid_argument("RandomWalk requires a non-empty graph");
  }
  if (start >= g.num_vertices()) {
    throw std::invalid_argument("RandomWalk start out of range");
  }
  // Only the start needs an edge: the walk can only stand on vertices it
  // reached along an edge, and undirected edges are traversable back.
  if (g.degree(start) == 0) {
    throw std::invalid_argument("RandomWalk start must have degree >= 1");
  }
  first_visit_[start] = 0;
}

Vertex RandomWalk::step(Rng& rng) {
  const auto degree = static_cast<std::uint32_t>(graph_->degree(position_));
  position_ = graph_->neighbor(position_, rng.next_below32(degree));
  ++steps_;
  if (first_visit_[position_] == kRoundNever) {
    first_visit_[position_] = static_cast<Round>(steps_);
    ++visited_count_;
  }
  return position_;
}

WalkProcess::WalkProcess(const Graph& g, RandomWalkOptions options)
    : graph_(&g), options_(options), first_visit_(g.num_vertices(), kRoundNever) {
  if (g.num_vertices() == 0) {
    throw std::invalid_argument("WalkProcess requires a non-empty graph");
  }
  if (options_.weighted) {
    if (!g.is_weighted()) {
      throw std::invalid_argument(
          "WalkProcess weighted=true requires a weighted graph");
    }
    alias_ = &g.alias_tables();
  }
}

std::size_t WalkProcess::curve_size_hint() const {
  // One curve entry per distinct visit: bounded by n, not by the budget.
  return std::min(graph_->num_vertices(), kCurveReserveCap);
}

void WalkProcess::append_curve_point() {
  // Visit-event sampling: one entry (the step index) per distinct visit.
  // A step visits at most one new vertex, so catching up is a single push.
  if (mutable_curve().size() < visited_count_) {
    mutable_curve().push_back(steps_);
  }
}

void WalkProcess::do_reset(std::span<const Vertex> starts) {
  if (starts.size() != 1) {
    throw std::invalid_argument("walk is a single-start process");
  }
  const Vertex start = starts.front();
  if (start >= graph_->num_vertices()) {
    throw std::invalid_argument("walk start out of range");
  }
  if (graph_->degree(start) == 0) {
    throw std::invalid_argument("walk start must have degree >= 1");
  }
  std::fill(first_visit_.begin(), first_visit_.end(), kRoundNever);
  first_visit_[start] = 0;
  position_ = start;
  steps_ = 0;
  visited_count_ = 1;
  fault_tx_ = 0;
}

void WalkProcess::do_step(Rng& rng) {
  if (faults() != nullptr) {
    step_faulty(rng);
    return;
  }
  if (alias_ != nullptr) {
    position_ = alias_->draw(*graph_, position_, rng);
  } else {
    const auto degree = static_cast<std::uint32_t>(graph_->degree(position_));
    position_ = graph_->neighbor(position_, rng.next_below32(degree));
  }
  ++steps_;
  if (first_visit_[position_] == kRoundNever) {
    first_visit_[position_] = static_cast<Round>(steps_);
    ++visited_count_;
  }
}

void WalkProcess::step_faulty(Rng& rng) {
  FaultSession& fs = *faults();
  // The round elapses whether or not the token can move — an always-down
  // schedule must still exhaust the step budget, never loop forever.
  ++steps_;
  if (!fs.can_send(position_)) return;  // down: token waits in place
  const Vertex w =
      alias_ != nullptr
          ? alias_->draw(*graph_, position_, rng)
          : graph_->neighbor(
                position_,
                rng.next_below32(
                    static_cast<std::uint32_t>(graph_->degree(position_))));
  ++fault_tx_;
  if (!fs.transmit(position_, 0, w)) return;  // hop lost/blocked: stay put
  position_ = w;
  if (first_visit_[position_] == kRoundNever) {
    first_visit_[position_] = static_cast<Round>(steps_);
    ++visited_count_;
  }
}

SpreadResult run_walk_cover(const Graph& g, Vertex start,
                            RandomWalkOptions options, Rng& rng) {
  RandomWalk walk(g, start);
  SpreadResult result;
  result.curve.reserve(std::min<std::size_t>(g.num_vertices(), 1u << 16));
  result.curve.push_back(0);  // first distinct visit (the start) at step 0
  while (!walk.covered() && walk.steps() < options.max_steps) {
    const std::size_t before = walk.visited_count();
    walk.step(rng);
    if (walk.visited_count() > before) {
      result.curve.push_back(walk.steps());
    }
  }
  result.completed = walk.covered();
  result.rounds = walk.steps();
  result.final_count = walk.visited_count();
  result.total_transmissions = walk.steps();  // one token move per step
  result.peak_vertex_round_transmissions = 1;
  return result;
}

std::optional<std::size_t> walk_hitting_time(const Graph& g, Vertex start,
                                             Vertex target,
                                             RandomWalkOptions options,
                                             Rng& rng) {
  RandomWalk walk(g, start);
  if (start == target) return 0;
  while (walk.steps() < options.max_steps) {
    if (walk.step(rng) == target) return walk.steps();
  }
  return std::nullopt;
}

}  // namespace cobra
