// SPDX-License-Identifier: MIT
//
// Simple random walk — the k = 1 degenerate case of COBRA. Cover time is
// Omega(n log n) on every graph (Feige), which is the paper's argument
// that k = 1 branching is "not enough"; experiment E11 measures the
// separation against k = 2.
#pragma once

#include <optional>
#include <vector>

#include "core/process_common.hpp"
#include "graph/graph.hpp"
#include "rand/rng.hpp"

namespace cobra {

class RandomWalk {
 public:
  /// Walk starting at `start`; requires min degree >= 1.
  RandomWalk(const Graph& g, Vertex start);

  /// Moves one step; returns the new position. The neighbour draw is
  /// g.neighbor(v, rng.next_below32(degree)) — intentionally identical to
  /// CobraProcess's draw so that a k=1 COBRA and a RandomWalk given equal
  /// RNG states produce the same trajectory (tested).
  Vertex step(Rng& rng);

  Vertex position() const noexcept { return position_; }
  std::size_t steps() const noexcept { return steps_; }
  std::size_t visited_count() const noexcept { return visited_count_; }
  bool covered() const noexcept {
    return visited_count_ == graph_->num_vertices();
  }
  const std::vector<Round>& first_visit_step() const noexcept {
    return first_visit_;
  }

 private:
  const Graph* graph_;
  Vertex position_;
  std::size_t steps_ = 0;
  std::size_t visited_count_ = 1;
  std::vector<Round> first_visit_;
};

struct RandomWalkOptions {
  std::size_t max_steps = 1u << 28;
};

/// Walks until every vertex is visited (or max_steps); SpreadResult.rounds
/// is the cover time in *steps*. curve is sampled only at visit events to
/// keep memory bounded: curve[i] = step of the i-th distinct visit.
SpreadResult run_walk_cover(const Graph& g, Vertex start,
                            RandomWalkOptions options, Rng& rng);

/// Steps until `target` is reached; nullopt if not within max_steps.
std::optional<std::size_t> walk_hitting_time(const Graph& g, Vertex start,
                                             Vertex target,
                                             RandomWalkOptions options,
                                             Rng& rng);

}  // namespace cobra
