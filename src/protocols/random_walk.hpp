// SPDX-License-Identifier: MIT
//
// Simple random walk — the k = 1 degenerate case of COBRA. Cover time is
// Omega(n log n) on every graph (Feige), which is the paper's argument
// that k = 1 branching is "not enough"; experiment E11 measures the
// separation against k = 2.
#pragma once

#include <optional>
#include <vector>

#include "core/process.hpp"
#include "core/process_common.hpp"
#include "graph/graph.hpp"
#include "rand/rng.hpp"

namespace cobra {

class RandomWalk {
 public:
  /// Walk starting at `start`; requires min degree >= 1.
  RandomWalk(const Graph& g, Vertex start);

  /// Moves one step; returns the new position. The neighbour draw is
  /// g.neighbor(v, rng.next_below32(degree)) — intentionally identical to
  /// CobraProcess's draw so that a k=1 COBRA and a RandomWalk given equal
  /// RNG states produce the same trajectory (tested).
  Vertex step(Rng& rng);

  Vertex position() const noexcept { return position_; }
  std::size_t steps() const noexcept { return steps_; }
  std::size_t visited_count() const noexcept { return visited_count_; }
  bool covered() const noexcept {
    return visited_count_ == graph_->num_vertices();
  }
  const std::vector<Round>& first_visit_step() const noexcept {
    return first_visit_;
  }

 private:
  const Graph* graph_;
  Vertex position_;
  std::size_t steps_ = 0;
  std::size_t visited_count_ = 1;
  std::vector<Round> first_visit_;
};

struct RandomWalkOptions {
  std::size_t max_steps = 1u << 28;
  bool record_curve = true;
  /// Weighted steps via the graph's alias tables (requires a weighted
  /// graph): P(move to w) = weight({v,w}) / strength(v) — the standard
  /// weighted random walk. false keeps the uniform draw and its RNG
  /// stream.
  bool weighted = false;
};

/// Steppable cover walk with a reusable workspace: the first-visit array
/// is sized once and epoch-refilled on reset. One Process round == one
/// walk step, and the RNG stream matches the legacy run_walk_cover
/// draw-for-draw. The curve keeps the legacy visit-event semantics:
/// curve[i] = step of the i-th distinct visit (bounded by n entries, not
/// by the 2^28-step budget).
class WalkProcess final : public Process {
 public:
  explicit WalkProcess(const Graph& g, RandomWalkOptions options = {});

  bool done() const override {
    return visited_count_ == graph_->num_vertices() ||
           steps_ >= options_.max_steps;
  }
  std::size_t round() const override { return steps_; }
  std::size_t reached_count() const override { return visited_count_; }
  /// Working set = the single token.
  std::size_t active_count() const override { return 1; }
  bool completed() const override {
    return visited_count_ == graph_->num_vertices();
  }
  /// Faults-off: one token move per step. Under faults, the moves the
  /// token actually attempted (a round spent down sends nothing).
  std::uint64_t total_transmissions() const override {
    return fault_session() != nullptr ? fault_tx_ : steps_;
  }
  std::uint64_t peak_vertex_round_transmissions() const override { return 1; }
  std::size_t round_limit() const override { return options_.max_steps; }

  Vertex position() const noexcept { return position_; }
  const Graph& graph() const noexcept { return *graph_; }
  const RandomWalkOptions& options() const noexcept { return options_; }

 protected:
  void do_reset(std::span<const Vertex> starts) override;
  void do_step(Rng& rng) override;
  bool curve_enabled() const override { return options_.record_curve; }
  std::size_t curve_size_hint() const override;
  void append_curve_point() override;

 private:
  /// Fault-aware step (core/faults.hpp): the step counter always advances
  /// (a round passes whether or not the token can move, so an always-down
  /// graph still exhausts the budget), but the token only attempts a move
  /// while its vertex is up, and only moves if the hop is delivered. A
  /// start vertex that is down at round 0 simply waits in place — the
  /// documented tolerate behaviour for walk-style processes.
  void step_faulty(Rng& rng);

  const Graph* graph_;
  RandomWalkOptions options_;
  /// Alias tables for weighted steps; null when unweighted.
  const GraphAliasTables* alias_ = nullptr;
  std::vector<Round> first_visit_;
  Vertex position_ = 0;
  std::size_t steps_ = 0;
  std::size_t visited_count_ = 0;
  std::uint64_t fault_tx_ = 0;  ///< hops attempted under faults
};

/// Walks until every vertex is visited (or max_steps); SpreadResult.rounds
/// is the cover time in *steps*. curve is sampled only at visit events to
/// keep memory bounded: curve[i] = step of the i-th distinct visit.
/// Legacy one-shot entry point — the parity oracle for WalkProcess.
SpreadResult run_walk_cover(const Graph& g, Vertex start,
                            RandomWalkOptions options, Rng& rng);

/// Steps until `target` is reached; nullopt if not within max_steps.
std::optional<std::size_t> walk_hitting_time(const Graph& g, Vertex start,
                                             Vertex target,
                                             RandomWalkOptions options,
                                             Rng& rng);

}  // namespace cobra
