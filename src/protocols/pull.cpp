// SPDX-License-Identifier: MIT
#include "protocols/pull.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace cobra {

PullProcess::PullProcess(const Graph& g, PullOptions options)
    : graph_(&g), options_(options), informed_(g.num_vertices(), 0) {
  if (g.num_vertices() == 0) {
    throw std::invalid_argument("PullProcess requires a non-empty graph");
  }
  if (options_.weighted) {
    if (!g.is_weighted()) {
      throw std::invalid_argument(
          "PullProcess weighted=true requires a weighted graph");
    }
    alias_ = &g.alias_tables();
  }
}

void PullProcess::do_reset(std::span<const Vertex> starts) {
  if (starts.size() != 1) {
    throw std::invalid_argument("pull is a single-start process");
  }
  const Vertex start = starts.front();
  if (start >= graph_->num_vertices()) {
    throw std::invalid_argument("pull start out of range");
  }
  // Isolated vertices can never pull anything; they are skipped below and
  // only the start (whose draw seeds nothing but whose reachability
  // matters) must have an edge.
  if (graph_->degree(start) == 0) {
    throw std::invalid_argument("pull start must have degree >= 1");
  }
  std::fill(informed_.begin(), informed_.end(), char{0});
  informed_[start] = 1;
  count_ = 1;
  round_ = 0;
  transmissions_ = 0;
  peak_ = 0;
}

void PullProcess::do_step(Rng& rng) {
  if (faults() != nullptr) {
    step_faulty(rng);
    return;
  }
  const Graph& g = *graph_;
  const std::size_t n = g.num_vertices();
  std::size_t contacts = 0;
  std::size_t new_informed = 0;
  // Synchronous: pulls read the start-of-round state; since informed
  // vertices never revert, evaluating in place is equivalent.
  for (Vertex v = 0; v < n; ++v) {
    if (informed_[v]) continue;
    const auto degree = static_cast<std::uint32_t>(g.degree(v));
    if (degree == 0) continue;  // isolated: nothing to pull from
    ++contacts;
    const Vertex w = alias_ != nullptr
                         ? alias_->draw(g, v, rng)
                         : g.neighbor(v, rng.next_below32(degree));
    if (informed_[w] == 1) {  // == 1: only start-of-round informed count
      informed_[v] = 2;       // mark for activation after the sweep
      ++new_informed;
    }
  }
  for (Vertex v = 0; v < n; ++v) {
    if (informed_[v] == 2) informed_[v] = 1;
  }
  count_ += new_informed;
  transmissions_ += contacts;
  peak_ = 1;
  ++round_;
}

void PullProcess::step_faulty(Rng& rng) {
  FaultSession& fs = *faults();
  const Graph& g = *graph_;
  const std::size_t n = g.num_vertices();
  std::size_t contacts = 0;
  std::size_t new_informed = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (informed_[v]) continue;
    const auto degree = static_cast<std::uint32_t>(g.degree(v));
    if (degree == 0) continue;
    // A pull is a request/response pair: v must be up and awake to hear
    // the response, and the one transmit models the round trip (the
    // contacted neighbour must be up and awake to answer, and the channel
    // must not drop it).
    if (!fs.can_receive(v)) continue;
    ++contacts;
    const Vertex w = alias_ != nullptr
                         ? alias_->draw(g, v, rng)
                         : g.neighbor(v, rng.next_below32(degree));
    if (fs.transmit(v, 0, w) && informed_[w] == 1) {
      informed_[v] = 2;  // mark for activation after the sweep
      ++new_informed;
    }
  }
  for (Vertex v = 0; v < n; ++v) {
    if (informed_[v] == 2) informed_[v] = 1;
  }
  count_ += new_informed;
  transmissions_ += contacts;
  if (contacts > 0) peak_ = 1;
  ++round_;
}

SpreadResult run_pull(const Graph& g, Vertex start, PullOptions options,
                      Rng& rng) {
  const std::size_t n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("run_pull requires a non-empty graph");
  if (start >= n) throw std::invalid_argument("pull start out of range");
  if (g.degree(start) == 0) {
    throw std::invalid_argument("run_pull start must have degree >= 1");
  }

  std::vector<char> informed(n, 0);
  informed[start] = 1;
  std::size_t count = 1;

  SpreadResult result;
  result.curve.push_back(count);
  std::size_t round = 0;
  while (count < n && round < options.max_rounds) {
    std::size_t contacts = 0;
    std::size_t new_informed = 0;
    for (Vertex v = 0; v < n; ++v) {
      if (informed[v]) continue;
      const auto degree = static_cast<std::uint32_t>(g.degree(v));
      if (degree == 0) continue;
      ++contacts;
      const Vertex w = g.neighbor(v, rng.next_below32(degree));
      if (informed[w] == 1) {
        informed[v] = 2;
        ++new_informed;
      }
    }
    for (Vertex v = 0; v < n; ++v) {
      if (informed[v] == 2) informed[v] = 1;
    }
    count += new_informed;
    result.total_transmissions += contacts;
    result.peak_vertex_round_transmissions = 1;
    ++round;
    result.curve.push_back(count);
  }
  result.completed = count == n;
  result.rounds = round;
  result.final_count = count;
  return result;
}

}  // namespace cobra
