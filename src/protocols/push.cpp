// SPDX-License-Identifier: MIT
#include "protocols/push.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace cobra {

PushProcess::PushProcess(const Graph& g, PushOptions options)
    : graph_(&g),
      options_(options),
      informed_(g.num_vertices(), 0) {
  if (g.num_vertices() == 0) {
    throw std::invalid_argument("PushProcess requires a non-empty graph");
  }
  if (options_.weighted) {
    if (!g.is_weighted()) {
      throw std::invalid_argument(
          "PushProcess weighted=true requires a weighted graph");
    }
    alias_ = &g.alias_tables();
  }
  informed_list_.reserve(g.num_vertices());
  new_informed_.reserve(g.num_vertices());
}

void PushProcess::do_reset(std::span<const Vertex> starts) {
  if (starts.size() != 1) {
    throw std::invalid_argument("push is a single-start process");
  }
  const Vertex start = starts.front();
  if (start >= graph_->num_vertices()) {
    throw std::invalid_argument("push start out of range");
  }
  // Only the start needs an edge: every later sender was informed across
  // an edge, so its degree is >= 1. Isolated vertices elsewhere simply
  // stay uninformed (the trial reports completed = false).
  if (graph_->degree(start) == 0) {
    throw std::invalid_argument("push start must have degree >= 1");
  }
  std::fill(informed_.begin(), informed_.end(), char{0});
  informed_list_.clear();
  new_informed_.clear();
  informed_[start] = 1;
  informed_list_.push_back(start);
  round_ = 0;
  transmissions_ = 0;
  peak_ = 0;
}

void PushProcess::do_step(Rng& rng) {
  if (faults() != nullptr) {
    step_faulty(rng);
    return;
  }
  const Graph& g = *graph_;
  const std::size_t senders = informed_list_.size();
  new_informed_.clear();
  for (std::size_t i = 0; i < senders; ++i) {
    const Vertex v = informed_list_[i];
    const Vertex w =
        alias_ != nullptr
            ? alias_->draw(g, v, rng)
            : g.neighbor(
                  v, rng.next_below32(static_cast<std::uint32_t>(g.degree(v))));
    if (!informed_[w]) {
      informed_[w] = 1;
      new_informed_.push_back(w);
    }
  }
  merge_new_informed();
  transmissions_ += senders;
  peak_ = 1;
  ++round_;
}

void PushProcess::merge_new_informed() {
  if (new_informed_.empty()) return;
  std::sort(new_informed_.begin(), new_informed_.end());
  // Backward in-place merge of the round's sorted new informees into the
  // sorted sender list. All entries are distinct (the bitmap gates
  // insertion), and both vectors are reserved to n, so this is
  // allocation-free.
  std::size_t ai = informed_list_.size();
  std::size_t bi = new_informed_.size();
  informed_list_.resize(ai + bi);
  std::size_t oi = informed_list_.size();
  while (bi > 0) {
    if (ai > 0 && informed_list_[ai - 1] > new_informed_[bi - 1]) {
      informed_list_[--oi] = informed_list_[--ai];
    } else {
      informed_list_[--oi] = new_informed_[--bi];
    }
  }
}

void PushProcess::step_faulty(Rng& rng) {
  FaultSession& fs = *faults();
  const Graph& g = *graph_;
  const std::size_t senders = informed_list_.size();
  std::uint64_t sends = 0;
  new_informed_.clear();
  for (std::size_t i = 0; i < senders; ++i) {
    const Vertex v = informed_list_[i];
    if (!fs.can_send(v)) continue;  // down: no push this round
    const Vertex w =
        alias_ != nullptr
            ? alias_->draw(g, v, rng)
            : g.neighbor(
                  v, rng.next_below32(static_cast<std::uint32_t>(g.degree(v))));
    ++sends;
    if (fs.transmit(v, 0, w) && !informed_[w]) {
      informed_[w] = 1;
      new_informed_.push_back(w);
    }
  }
  merge_new_informed();
  transmissions_ += sends;
  if (sends > 0) peak_ = 1;
  ++round_;
}

SpreadResult run_push(const Graph& g, Vertex start, PushOptions options,
                      Rng& rng) {
  const std::size_t n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("run_push requires a non-empty graph");
  if (start >= n) throw std::invalid_argument("push start out of range");
  if (g.degree(start) == 0) {
    throw std::invalid_argument("run_push start must have degree >= 1");
  }

  std::vector<char> informed(n, 0);
  std::vector<Vertex> informed_list;
  informed_list.reserve(n);
  informed[start] = 1;
  informed_list.push_back(start);

  SpreadResult result;
  result.curve.push_back(1);
  std::size_t round = 0;
  while (informed_list.size() < n && round < options.max_rounds) {
    const std::size_t senders = informed_list.size();
    for (std::size_t i = 0; i < senders; ++i) {
      const Vertex v = informed_list[i];
      const Vertex w = g.neighbor(
          v, rng.next_below32(static_cast<std::uint32_t>(g.degree(v))));
      if (!informed[w]) {
        informed[w] = 1;
        informed_list.push_back(w);
      }
    }
    // Keep the sender list sorted so round r+1 iterates senders in
    // ascending vertex order (the same canonical order PushProcess and the
    // batched engine use).
    std::sort(informed_list.begin() + senders, informed_list.end());
    std::inplace_merge(informed_list.begin(), informed_list.begin() + senders,
                       informed_list.end());
    result.total_transmissions += senders;
    result.peak_vertex_round_transmissions = 1;
    ++round;
    result.curve.push_back(informed_list.size());
  }
  result.completed = informed_list.size() == n;
  result.rounds = round;
  result.final_count = informed_list.size();
  return result;
}

}  // namespace cobra
