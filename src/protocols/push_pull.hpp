// SPDX-License-Identifier: MIT
//
// Push-pull rumour spreading (Karp et al.): each round every informed
// vertex pushes to a uniform neighbour AND every uninformed vertex pulls
// from a uniform neighbour (becoming informed if the contacted neighbour
// is informed). The strongest classical baseline; always n contacts per
// round. Used in experiment E12.
#pragma once

#include "core/process_common.hpp"
#include "graph/graph.hpp"
#include "rand/rng.hpp"

namespace cobra {

struct PushPullOptions {
  std::size_t max_rounds = 1u << 20;
};

SpreadResult run_push_pull(const Graph& g, Vertex start,
                           PushPullOptions options, Rng& rng);

}  // namespace cobra
