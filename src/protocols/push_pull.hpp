// SPDX-License-Identifier: MIT
//
// Push-pull rumour spreading (Karp et al.): each round every informed
// vertex pushes to a uniform neighbour AND every uninformed vertex pulls
// from a uniform neighbour (becoming informed if the contacted neighbour
// is informed). The strongest classical baseline; always n contacts per
// round. Used in experiment E12.
#pragma once

#include "core/process.hpp"
#include "core/process_common.hpp"
#include "graph/graph.hpp"
#include "rand/rng.hpp"

namespace cobra {

struct PushPullOptions {
  std::size_t max_rounds = 1u << 20;
  bool record_curve = true;
  /// Weighted contact choice via the graph's alias tables (requires a
  /// weighted graph); false keeps the uniform draw and its RNG stream.
  bool weighted = false;
};

/// Steppable push-pull with a reusable workspace (see PushProcess). The
/// RNG stream is draw-for-draw identical to the legacy run_push_pull
/// (every positive-degree vertex contacts once, in ascending order).
class PushPullProcess final : public Process {
 public:
  explicit PushPullProcess(const Graph& g, PushPullOptions options = {});

  bool done() const override {
    return count_ == graph_->num_vertices() || round_ >= options_.max_rounds;
  }
  std::size_t round() const override { return round_; }
  std::size_t reached_count() const override { return count_; }
  /// Working set = every positive-degree vertex (all of them contact).
  std::size_t active_count() const override { return contactors_; }
  bool completed() const override { return count_ == graph_->num_vertices(); }
  std::uint64_t total_transmissions() const override { return transmissions_; }
  std::uint64_t peak_vertex_round_transmissions() const override {
    return peak_;
  }
  std::size_t round_limit() const override { return options_.max_rounds; }

  const Graph& graph() const noexcept { return *graph_; }
  const PushPullOptions& options() const noexcept { return options_; }

 protected:
  void do_reset(std::span<const Vertex> starts) override;
  void do_step(Rng& rng) override;
  bool curve_enabled() const override { return options_.record_curve; }

 private:
  /// Fault-aware round (core/faults.hpp): a down vertex makes no contact;
  /// pushes inform on delivery, and pulls (request/response pairs) need
  /// the puller up and awake plus a delivered round trip. Informed
  /// membership stays monotone.
  void step_faulty(Rng& rng);

  const Graph* graph_;
  PushPullOptions options_;
  /// Alias tables for weighted draws; null when unweighted.
  const GraphAliasTables* alias_ = nullptr;
  std::vector<char> informed_;
  std::vector<char> next_;
  std::size_t contactors_ = 0;  ///< positive-degree vertex count (fixed)
  std::size_t count_ = 0;
  std::size_t round_ = 0;
  std::uint64_t transmissions_ = 0;
  std::uint64_t peak_ = 0;
};

/// Legacy one-shot entry point — the parity oracle for PushPullProcess.
SpreadResult run_push_pull(const Graph& g, Vertex start,
                           PushPullOptions options, Rng& rng);

}  // namespace cobra
