// SPDX-License-Identifier: MIT
//
// Non-coalescing branching random walk — the ablation partner of COBRA.
// Every *particle* (not vertex) spawns k particles at uniformly chosen
// neighbours each round, so the particle population multiplies by k per
// round (2^t for k = 2). COBRA is exactly this process with all particles
// at a vertex coalesced into one; comparing the two isolates what
// coalescing buys: the same (slightly better) cover rounds at an
// exponentially smaller message bill.
#pragma once

#include <cstdint>
#include <vector>

#include "core/process_common.hpp"
#include "graph/graph.hpp"
#include "rand/rng.hpp"

namespace cobra {

struct BranchingWalkOptions {
  unsigned k = 2;
  std::size_t max_rounds = 64;
  /// Per-vertex particle cap. Populations grow like k^t, far beyond any
  /// machine: once a vertex holds this many particles its surplus is
  /// dropped (the occupied-set dynamics are essentially unaffected — a
  /// capped vertex still floods its whole neighbourhood with draws, and
  /// message totals report a documented lower bound from then on).
  std::uint64_t vertex_cap = 1u << 20;
};

struct BranchingWalkResult {
  bool covered = false;
  std::size_t rounds = 0;
  std::size_t final_visited = 0;
  /// Total particle moves (== messages); saturates at the cap regime and
  /// is then a lower bound on the true count.
  std::uint64_t total_messages = 0;
  /// Particle population per round (capped).
  std::vector<std::uint64_t> population_curve;
  /// True if any vertex hit the cap (message totals are lower bounds).
  bool saturated = false;
};

/// Runs from a single particle at `start` until cover or max_rounds.
BranchingWalkResult run_branching_walk(const Graph& g, Vertex start,
                                       BranchingWalkOptions options, Rng& rng);

}  // namespace cobra
