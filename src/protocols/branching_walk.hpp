// SPDX-License-Identifier: MIT
//
// Non-coalescing branching random walk — the ablation partner of COBRA.
// Every *particle* (not vertex) spawns k particles at uniformly chosen
// neighbours each round, so the particle population multiplies by k per
// round (2^t for k = 2). COBRA is exactly this process with all particles
// at a vertex coalesced into one; comparing the two isolates what
// coalescing buys: the same (slightly better) cover rounds at an
// exponentially smaller message bill.
#pragma once

#include <cstdint>
#include <vector>

#include "core/process.hpp"
#include "core/process_common.hpp"
#include "graph/graph.hpp"
#include "rand/rng.hpp"

namespace cobra {

struct BranchingWalkOptions {
  unsigned k = 2;
  std::size_t max_rounds = 64;
  /// Per-vertex particle cap. Populations grow like k^t, far beyond any
  /// machine: once a vertex holds this many particles its surplus is
  /// dropped (the occupied-set dynamics are essentially unaffected — a
  /// capped vertex still floods its whole neighbourhood with draws, and
  /// message totals report a documented lower bound from then on).
  std::uint64_t vertex_cap = 1u << 20;
  bool record_curve = true;
  /// Weighted spawn targets via the graph's alias tables (requires a
  /// weighted graph): each spawn lands on neighbour w with probability
  /// weight({v,w}) / strength(v). Applies to the per-particle path; the
  /// saturated even-share split stays an even split (with populations
  /// >= 64 * degree every neighbour's expected share is large whatever
  /// the weights — the occupied-set dynamics, which are what the
  /// ablation measures, are unaffected). false keeps the uniform draw
  /// and its RNG stream. Applies to BranchingWalkProcess only — the
  /// legacy run_branching_walk oracle stays uniform.
  bool weighted = false;
};

/// Steppable branching walk with a reusable workspace (particle-count,
/// next-count, and visited arrays sized once, refilled on reset). The RNG
/// stream matches the legacy run_branching_walk draw-for-draw, including
/// the large-population multinomial-approximate split. The curve follows
/// the uniform semantics (distinct visited per round); the particle
/// population and saturation flag stay available via accessors.
class BranchingWalkProcess final : public Process {
 public:
  explicit BranchingWalkProcess(const Graph& g,
                                BranchingWalkOptions options = {});

  bool done() const override {
    return visited_count_ == graph_->num_vertices() ||
           round_ >= options_.max_rounds;
  }
  std::size_t round() const override { return round_; }
  std::size_t reached_count() const override { return visited_count_; }
  /// Working set = vertices currently holding particles.
  std::size_t active_count() const override { return occupied_; }
  bool completed() const override {
    return visited_count_ == graph_->num_vertices();
  }
  /// Particle moves == messages; a lower bound once saturated().
  std::uint64_t total_transmissions() const override { return messages_; }
  std::size_t round_limit() const override { return options_.max_rounds; }

  /// Current particle population (capped).
  std::uint64_t population() const noexcept { return population_; }
  /// Particles currently at `v` (diagnostics / distribution tests).
  std::uint64_t particles_at(Vertex v) const { return counts_[v]; }
  /// True if any vertex hit the cap (message totals are lower bounds).
  bool saturated() const noexcept { return saturated_; }

  const Graph& graph() const noexcept { return *graph_; }
  const BranchingWalkOptions& options() const noexcept { return options_; }

 protected:
  void do_reset(std::span<const Vertex> starts) override;
  void do_step(Rng& rng) override;
  bool curve_enabled() const override { return options_.record_curve; }

 private:
  /// Fault-aware round (core/faults.hpp): a down vertex's particles are
  /// frozen in place (a down start vertex at round 0 simply waits — the
  /// documented tolerate behaviour), and on the per-particle path a
  /// particle whose every spawn was lost survives in place, so faults
  /// never extinguish the population. The saturated even-share path
  /// applies drops in expectation (share scaled by 1 - drop) and skips
  /// receivers that cannot receive, recording the split through the
  /// session's bulk counters so conservation holds exactly.
  void step_faulty(Rng& rng);

  const Graph* graph_;
  BranchingWalkOptions options_;
  /// Alias tables for weighted spawns; null when unweighted.
  const GraphAliasTables* alias_ = nullptr;
  std::vector<std::uint64_t> counts_;
  std::vector<std::uint64_t> next_;
  std::vector<char> visited_;
  std::size_t visited_count_ = 0;
  std::size_t occupied_ = 0;
  std::uint64_t population_ = 0;
  std::uint64_t messages_ = 0;
  std::size_t round_ = 0;
  bool saturated_ = false;
};

struct BranchingWalkResult {
  bool covered = false;
  std::size_t rounds = 0;
  std::size_t final_visited = 0;
  /// Total particle moves (== messages); saturates at the cap regime and
  /// is then a lower bound on the true count.
  std::uint64_t total_messages = 0;
  /// Particle population per round (capped).
  std::vector<std::uint64_t> population_curve;
  /// True if any vertex hit the cap (message totals are lower bounds).
  bool saturated = false;
};

/// Runs from a single particle at `start` until cover or max_rounds.
/// Legacy one-shot entry point — the parity oracle for
/// BranchingWalkProcess.
BranchingWalkResult run_branching_walk(const Graph& g, Vertex start,
                                       BranchingWalkOptions options, Rng& rng);

}  // namespace cobra
