// SPDX-License-Identifier: MIT
//
// The process registry (see core/process_factory.hpp). This is the only
// translation unit that knows every concrete process type; everything
// above it — scenario engine, trial runner, benches, scenario_runner
// --list — sees the uniform Process interface plus this table's metadata.
//
// Adding a process:
//   1. implement a Process subclass with a reusable workspace,
//   2. append one entry to kRegistry (name, summary, keys, builder),
// and it is immediately sweepable from scenario specs, runnable by the
// trial runner, listed by scenario_runner --list, and covered by the
// registry-driven tests and benches.
#include "core/process_factory.hpp"

#include <algorithm>

#include "core/bips.hpp"
#include "core/cobra.hpp"
#include "core/sis.hpp"
#include "protocols/branching_walk.hpp"
#include "protocols/flood.hpp"
#include "protocols/pull.hpp"
#include "protocols/push.hpp"
#include "protocols/push_pull.hpp"
#include "protocols/random_walk.hpp"
#include "util/param_reader.hpp"

namespace cobra {

namespace {

/// Process parameter reader reporting ProcessFactoryError (shared
/// machinery in util/param_reader.hpp; the graph-family registry uses the
/// same reader with SpecError).
using Reader = ParamReader<ProcessFactoryError>;

/// Parses the shared branching spec: integer `k`, or fractional `rho`
/// (expected factor 1 + rho); giving both is an error.
Branching read_branching(Reader& p) {
  const bool has_rho = p.has("rho");
  const bool has_k = p.has("k");
  if (has_rho && has_k) {
    throw ProcessFactoryError(
        "process: give either 'k' (integer branching) or 'rho' "
        "(fractional), not both");
  }
  if (has_rho) {
    const double rho = p.require_double("rho");
    if (rho < 0.0) {
      throw ProcessFactoryError("process: 'rho' must be >= 0");
    }
    return Branching::fractional(rho);
  }
  const std::int64_t k = p.get_int("k", 2);
  if (k < 1) {
    throw ProcessFactoryError("process: 'k' must be >= 1");
  }
  return Branching::fixed(static_cast<unsigned>(k));
}

std::size_t read_max_rounds(Reader& p, std::size_t fallback) {
  const std::int64_t v =
      p.get_int("max_rounds", static_cast<std::int64_t>(fallback));
  if (v < 0) {
    throw ProcessFactoryError("process: 'max_rounds' must be >= 0");
  }
  return static_cast<std::size_t>(v);
}

bool read_record_curve(Reader& p) {
  return p.get_int("record_curve", 1) != 0;
}

/// Parses `weighted` and fails fast (with registry context) when the
/// bound graph carries no weights — the process constructors re-check,
/// but this names the actual problem instead of surfacing a bare
/// invalid_argument mid-campaign.
bool read_weighted(Reader& p, const Graph& g, const char* process_name) {
  const bool weighted = p.get_int("weighted", 0) != 0;
  if (weighted && !g.is_weighted()) {
    throw ProcessFactoryError(
        std::string("process '") + process_name + "': weighted=1 but graph '" +
        g.name() +
        "' has no edge weights (load a weighted edge list / .cgr v2, or set "
        "'weight = uniform|exp' on the [graph] section)");
  }
  return weighted;
}

/// First vertex with an edge — the workspace-construction start for the
/// engines whose constructor needs one (trial starts are rotated by the
/// caller and revalidated on reset).
Vertex first_spreadable(const Graph& g) {
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) > 0) return v;
  }
  throw ProcessFactoryError("graph '" + g.name() + "' has no edges");
}

/// BIPS/SIS make every susceptible vertex sample its neighbourhood each
/// round, so — unlike COBRA and the walk-style protocols — isolated
/// vertices anywhere are a hard error; say so with registry context.
void require_all_degrees(const Graph& g, const char* process_name) {
  if (g.num_vertices() > 0 && g.min_degree() == 0) {
    throw ProcessFactoryError(
        std::string("process '") + process_name + "': graph '" + g.name() +
        "' has isolated vertices, but every vertex samples "
        "neighbours each round (min degree >= 1 required)");
  }
}

using Builder = std::unique_ptr<Process> (*)(const Graph&, Reader&);

struct RegistryEntry {
  ProcessSpec spec;
  Builder build;
};

constexpr ProcessParamSpec kBranchingKeys[] = {
    {"k", "int >= 1 (default 2) — neighbours drawn per active vertex"},
    {"rho", "float >= 0 — fractional branching 1 + rho (excludes 'k')"},
};
constexpr ProcessParamSpec kMaxRounds20 = {
    "max_rounds", "int (default 2^20) — abort threshold"};
constexpr ProcessParamSpec kRecordCurve = {
    "record_curve", "0/1 (default 1) — record the per-round curve"};
constexpr ProcessParamSpec kWeighted = {
    "weighted",
    "0/1 (default 0) — weight-proportional neighbour draws via alias "
    "tables (requires a weighted graph)"};

const std::vector<RegistryEntry>& registry() {
  // Sorted by name; the table is the one place a process is declared.
  static const std::vector<RegistryEntry> kRegistry = {
      {{"bips",
        "biased infection with persistent source (epidemic dual of COBRA)",
        {kBranchingKeys[0], kBranchingKeys[1], kMaxRounds20, kRecordCurve,
         kWeighted}},
       [](const Graph& g, Reader& p) -> std::unique_ptr<Process> {
         require_all_degrees(g, "bips");
         BipsOptions options;
         options.branching = read_branching(p);
         options.max_rounds = read_max_rounds(p, 1u << 20);
         options.record_curve = read_record_curve(p);
         options.weighted = read_weighted(p, g, "bips");
         return std::make_unique<BipsProcess>(g, first_spreadable(g), options);
       }},
      {{"branching-walk",
        "non-coalescing branching walk (COBRA without coalescing)",
        {{"k", "int >= 1 (default 2) — particles spawned per particle"},
         {"max_rounds", "int (default 64) — abort threshold"},
         {"vertex_cap", "int (default 2^20) — per-vertex particle cap"},
         kRecordCurve, kWeighted}},
       [](const Graph& g, Reader& p) -> std::unique_ptr<Process> {
         BranchingWalkOptions options;
         const std::int64_t k = p.get_int("k", 2);
         if (k < 1) {
           throw ProcessFactoryError("process: 'k' must be >= 1");
         }
         options.k = static_cast<unsigned>(k);
         options.max_rounds = read_max_rounds(p, 64);
         const std::int64_t cap = p.get_int("vertex_cap", 1 << 20);
         if (cap < 1) {
           throw ProcessFactoryError("process: 'vertex_cap' must be >= 1");
         }
         options.vertex_cap = static_cast<std::uint64_t>(cap);
         options.record_curve = read_record_curve(p);
         options.weighted = read_weighted(p, g, "branching-walk");
         return std::make_unique<BranchingWalkProcess>(g, options);
       }},
      {{"cobra",
        "coalescing-branching random walk (the paper's process)",
        {kBranchingKeys[0], kBranchingKeys[1], kMaxRounds20, kRecordCurve,
         kWeighted}},
       [](const Graph& g, Reader& p) -> std::unique_ptr<Process> {
         CobraOptions options;
         options.branching = read_branching(p);
         options.max_rounds = read_max_rounds(p, 1u << 20);
         // Gates only the curve + per-round message breakdown; totals and
         // peak are counted regardless (Process contract: results do not
         // depend on curve recording).
         options.record_curves = read_record_curve(p);
         options.weighted = read_weighted(p, g, "cobra");
         return std::make_unique<CobraProcess>(g, first_spreadable(g),
                                               options);
       }},
      {{"flood",
        "deterministic flooding (eccentricity rounds, Theta(m) msgs/round)",
        {kMaxRounds20, kRecordCurve}},
       [](const Graph& g, Reader& p) -> std::unique_ptr<Process> {
         FloodOptions options;
         options.max_rounds = read_max_rounds(p, 1u << 20);
         options.record_curve = read_record_curve(p);
         return std::make_unique<FloodProcess>(g, options);
       }},
      {{"pull",
        "pull rumour spreading (uninformed vertices sample one neighbour)",
        {kMaxRounds20, kRecordCurve, kWeighted}},
       [](const Graph& g, Reader& p) -> std::unique_ptr<Process> {
         PullOptions options;
         options.max_rounds = read_max_rounds(p, 1u << 20);
         options.record_curve = read_record_curve(p);
         options.weighted = read_weighted(p, g, "pull");
         return std::make_unique<PullProcess>(g, options);
       }},
      {{"push",
        "push rumour spreading (informed vertices send to one neighbour)",
        {kMaxRounds20, kRecordCurve, kWeighted}},
       [](const Graph& g, Reader& p) -> std::unique_ptr<Process> {
         PushOptions options;
         options.max_rounds = read_max_rounds(p, 1u << 20);
         options.record_curve = read_record_curve(p);
         options.weighted = read_weighted(p, g, "push");
         return std::make_unique<PushProcess>(g, options);
       }},
      {{"push-pull",
        "push-pull rumour spreading (Karp et al.; n contacts per round)",
        {kMaxRounds20, kRecordCurve, kWeighted}},
       [](const Graph& g, Reader& p) -> std::unique_ptr<Process> {
         PushPullOptions options;
         options.max_rounds = read_max_rounds(p, 1u << 20);
         options.record_curve = read_record_curve(p);
         options.weighted = read_weighted(p, g, "push-pull");
         return std::make_unique<PushPullProcess>(g, options);
       }},
      {{"sis",
        "source-free SIS epidemic (BIPS without the persistent source)",
        {kBranchingKeys[0], kBranchingKeys[1],
         {"max_rounds", "int (default 2^16) — abort threshold"},
         kRecordCurve, kWeighted}},
       [](const Graph& g, Reader& p) -> std::unique_ptr<Process> {
         require_all_degrees(g, "sis");
         SisOptions options;
         options.branching = read_branching(p);
         options.max_rounds = read_max_rounds(p, 1u << 16);
         options.record_curve = read_record_curve(p);
         options.weighted = read_weighted(p, g, "sis");
         return std::make_unique<SisProcess>(g, options);
       }},
      {{"walk",
        "simple random walk (k = 1 COBRA; one step per round)",
        {{"max_rounds", "int (default 2^28) — step budget"}, kRecordCurve,
         kWeighted}},
       [](const Graph& g, Reader& p) -> std::unique_ptr<Process> {
         RandomWalkOptions options;
         options.max_steps = read_max_rounds(p, std::size_t{1} << 28);
         options.record_curve = read_record_curve(p);
         options.weighted = read_weighted(p, g, "walk");
         return std::make_unique<WalkProcess>(g, options);
       }},
  };
  return kRegistry;
}

const RegistryEntry* find_entry(std::string_view name) {
  for (const auto& entry : registry()) {
    if (name == entry.spec.name) return &entry;
  }
  return nullptr;
}

}  // namespace

const std::vector<ProcessSpec>& process_registry() {
  static const std::vector<ProcessSpec> kSpecs = [] {
    std::vector<ProcessSpec> specs;
    for (const auto& entry : registry()) specs.push_back(entry.spec);
    return specs;
  }();
  return kSpecs;
}

std::vector<std::string> process_names() {
  std::vector<std::string> names;
  for (const auto& entry : registry()) names.emplace_back(entry.spec.name);
  return names;
}

const ProcessSpec* find_process_spec(std::string_view name) {
  const RegistryEntry* entry = find_entry(name);
  return entry != nullptr ? &entry->spec : nullptr;
}

bool is_process_name(std::string_view name) {
  return find_entry(name) != nullptr;
}

bool process_has_param(std::string_view name, std::string_view key) {
  const RegistryEntry* entry = find_entry(name);
  if (entry == nullptr) return false;
  for (const auto& param : entry->spec.params) {
    if (key == param.key) return true;
  }
  return false;
}

std::unique_ptr<Process> make_process(const Graph& g, std::string_view name,
                                      const ProcessParams& params) {
  const RegistryEntry* entry = find_entry(name);
  if (entry == nullptr) {
    throw ProcessFactoryError("process: unknown name '" + std::string(name) +
                              "' (see scenario_runner --list)");
  }
  Reader reader(params, "process '" + std::string(name) + "'");
  reader.has("name");  // optional dispatch key: consumed if present
  std::unique_ptr<Process> process = entry->build(g, reader);
  reader.finish();
  return process;
}

std::unique_ptr<Process> make_process(const Graph& g,
                                      const ProcessParams& params) {
  for (const auto& [key, value] : params) {
    if (key == "name") return make_process(g, value, params);
  }
  throw ProcessFactoryError("process: missing required parameter 'name'");
}

}  // namespace cobra
