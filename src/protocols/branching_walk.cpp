// SPDX-License-Identifier: MIT
#include "protocols/branching_walk.hpp"

#include <algorithm>
#include <stdexcept>

#include "rand/sampling.hpp"

namespace cobra {

BranchingWalkProcess::BranchingWalkProcess(const Graph& g,
                                           BranchingWalkOptions options)
    : graph_(&g),
      options_(options),
      counts_(g.num_vertices(), 0),
      next_(g.num_vertices(), 0),
      visited_(g.num_vertices(), 0) {
  if (g.num_vertices() == 0) {
    throw std::invalid_argument("branching walk requires a non-empty graph");
  }
  if (options_.k == 0) {
    throw std::invalid_argument("branching walk needs k>=1");
  }
  if (options_.weighted) {
    if (!g.is_weighted()) {
      throw std::invalid_argument(
          "branching walk weighted=true requires a weighted graph");
    }
    alias_ = &g.alias_tables();
  }
}

void BranchingWalkProcess::do_reset(std::span<const Vertex> starts) {
  if (starts.size() != 1) {
    throw std::invalid_argument("branching walk is a single-start process");
  }
  const Vertex start = starts.front();
  if (start >= graph_->num_vertices()) {
    throw std::invalid_argument("branching walk start range");
  }
  // Particles occupy only vertices reached along edges, so a start-degree
  // check is sufficient even on graphs with isolated vertices.
  if (graph_->degree(start) == 0) {
    throw std::invalid_argument("branching walk start must have degree >= 1");
  }
  std::fill(counts_.begin(), counts_.end(), std::uint64_t{0});
  std::fill(visited_.begin(), visited_.end(), char{0});
  counts_[start] = 1;
  visited_[start] = 1;
  visited_count_ = 1;
  occupied_ = 1;
  population_ = 1;
  messages_ = 0;
  round_ = 0;
  saturated_ = false;
}

void BranchingWalkProcess::do_step(Rng& rng) {
  if (faults() != nullptr) {
    step_faulty(rng);
    return;
  }
  const Graph& g = *graph_;
  const std::size_t n = g.num_vertices();
  std::fill(next_.begin(), next_.end(), std::uint64_t{0});
  std::uint64_t moves = 0;
  for (Vertex v = 0; v < n; ++v) {
    const std::uint64_t particles = counts_[v];
    if (particles == 0) continue;
    const std::size_t degree = g.degree(v);
    // For small populations simulate each particle's k draws; for large
    // ones (>= degree * 64) every neighbour is hit with overwhelming
    // probability — split the population multinomially-approximate by
    // even shares, which preserves totals and occupied support.
    if (particles < static_cast<std::uint64_t>(degree) * 64) {
      for (std::uint64_t p = 0; p < particles; ++p) {
        for (unsigned i = 0; i < options_.k; ++i) {
          const Vertex w =
              alias_ != nullptr
                  ? alias_->draw(g, v, rng)
                  : g.neighbor(v, rng.next_below32(
                                      static_cast<std::uint32_t>(degree)));
          next_[w] = std::min(options_.vertex_cap, next_[w] + 1);
          ++moves;
        }
      }
    } else {
      const std::uint64_t out = particles * options_.k;
      const std::uint64_t share = out / degree;
      for (const Vertex w : g.neighbors(v)) {
        next_[w] = std::min(options_.vertex_cap, next_[w] + share);
      }
      moves += out;
      saturated_ = true;
    }
  }
  std::uint64_t population = 0;
  std::size_t occupied = 0;
  for (Vertex v = 0; v < n; ++v) {
    counts_[v] = next_[v];
    if (counts_[v] > 0) {
      ++occupied;
      if (!visited_[v]) {
        visited_[v] = 1;
        ++visited_count_;
      }
    }
    population += counts_[v];
    saturated_ |= (counts_[v] >= options_.vertex_cap);
  }
  messages_ += moves;
  population_ = population;
  occupied_ = occupied;
  ++round_;
}

void BranchingWalkProcess::step_faulty(Rng& rng) {
  FaultSession& fs = *faults();
  const Graph& g = *graph_;
  const std::size_t n = g.num_vertices();
  const double keep = 1.0 - fs.model().options().drop;
  std::fill(next_.begin(), next_.end(), std::uint64_t{0});
  std::uint64_t moves = 0;
  for (Vertex v = 0; v < n; ++v) {
    const std::uint64_t particles = counts_[v];
    if (particles == 0) continue;
    if (!fs.can_send(v)) {
      // Down: all particles frozen in place (delay, never corrupt).
      next_[v] = std::min(options_.vertex_cap, next_[v] + particles);
      continue;
    }
    const std::size_t degree = g.degree(v);
    if (particles < static_cast<std::uint64_t>(degree) * 64) {
      // Per-particle path: each spawn is one message; a particle whose
      // every spawn was lost survives in place.
      std::uint32_t index = 0;
      for (std::uint64_t p = 0; p < particles; ++p) {
        bool any_delivered = false;
        for (unsigned i = 0; i < options_.k; ++i) {
          const Vertex w =
              alias_ != nullptr
                  ? alias_->draw(g, v, rng)
                  : g.neighbor(v, rng.next_below32(
                                      static_cast<std::uint32_t>(degree)));
          ++moves;
          if (fs.transmit(v, index++, w)) {
            next_[w] = std::min(options_.vertex_cap, next_[w] + 1);
            any_delivered = true;
          }
        }
        if (!any_delivered) {
          next_[v] = std::min(options_.vertex_cap, next_[v] + 1);
        }
      }
    } else {
      // Saturated even-share path: drops are applied in expectation (the
      // per-neighbour share scaled by 1 - drop — deterministic double
      // arithmetic, so still bitwise reproducible), receivers that cannot
      // receive get nothing, and the split is recorded through the bulk
      // counters so tx == delivered + dropped + blocked holds exactly.
      const std::uint64_t out = particles * options_.k;
      const std::uint64_t share = out / degree;
      const auto delivered_share =
          static_cast<std::uint64_t>(static_cast<double>(share) * keep);
      fs.record_tx_bulk(v, out);
      std::uint64_t accounted = 0;
      std::uint64_t delivered_here = 0;
      for (const Vertex w : g.neighbors(v)) {
        if (fs.can_receive(w)) {
          if (delivered_share > 0) {
            next_[w] =
                std::min(options_.vertex_cap, next_[w] + delivered_share);
            fs.record_rx_bulk(w, delivered_share);
            delivered_here += delivered_share;
          }
          fs.record_dropped_bulk(share - delivered_share);
        } else {
          fs.record_blocked_bulk(share);
        }
        accounted += share;
      }
      // The integer-division remainder of the split is charged as loss.
      fs.record_dropped_bulk(out - accounted);
      // Nothing deliverable (every neighbour blocked, or the scaled share
      // rounded to zero): the population survives in place — faults delay
      // the walk, they never extinguish it.
      if (delivered_here == 0) {
        next_[v] = std::min(options_.vertex_cap, next_[v] + particles);
      }
      moves += out;
      saturated_ = true;
    }
  }
  std::uint64_t population = 0;
  std::size_t occupied = 0;
  for (Vertex v = 0; v < n; ++v) {
    counts_[v] = next_[v];
    if (counts_[v] > 0) {
      ++occupied;
      if (!visited_[v]) {
        visited_[v] = 1;
        ++visited_count_;
      }
    }
    population += counts_[v];
    saturated_ |= (counts_[v] >= options_.vertex_cap);
  }
  messages_ += moves;
  population_ = population;
  occupied_ = occupied;
  ++round_;
}

BranchingWalkResult run_branching_walk(const Graph& g, Vertex start,
                                       BranchingWalkOptions options,
                                       Rng& rng) {
  const std::size_t n = g.num_vertices();
  if (n == 0) {
    throw std::invalid_argument("branching walk requires a non-empty graph");
  }
  if (start >= n) throw std::invalid_argument("branching walk start range");
  if (g.degree(start) == 0) {
    throw std::invalid_argument("branching walk start must have degree >= 1");
  }
  if (options.k == 0) throw std::invalid_argument("branching walk needs k>=1");

  std::vector<std::uint64_t> counts(n, 0);
  std::vector<std::uint64_t> next(n, 0);
  std::vector<char> visited(n, 0);
  counts[start] = 1;
  visited[start] = 1;
  std::size_t visited_count = 1;

  BranchingWalkResult result;
  result.population_curve.push_back(1);
  std::size_t round = 0;
  while (visited_count < n && round < options.max_rounds) {
    std::fill(next.begin(), next.end(), 0);
    std::uint64_t moves = 0;
    for (Vertex v = 0; v < n; ++v) {
      const std::uint64_t particles = counts[v];
      if (particles == 0) continue;
      const std::size_t degree = g.degree(v);
      if (particles < static_cast<std::uint64_t>(degree) * 64) {
        for (std::uint64_t p = 0; p < particles; ++p) {
          for (unsigned i = 0; i < options.k; ++i) {
            const Vertex w = g.neighbor(
                v, rng.next_below32(static_cast<std::uint32_t>(degree)));
            next[w] = std::min(options.vertex_cap, next[w] + 1);
            ++moves;
          }
        }
      } else {
        const std::uint64_t out = particles * options.k;
        const std::uint64_t share = out / degree;
        for (const Vertex w : g.neighbors(v)) {
          next[w] = std::min(options.vertex_cap, next[w] + share);
        }
        moves += out;
        result.saturated = true;
      }
    }
    std::uint64_t population = 0;
    for (Vertex v = 0; v < n; ++v) {
      counts[v] = next[v];
      if (counts[v] > 0 && !visited[v]) {
        visited[v] = 1;
        ++visited_count;
      }
      population += counts[v];
      result.saturated |= (counts[v] >= options.vertex_cap);
    }
    result.total_messages += moves;
    result.population_curve.push_back(population);
    ++round;
  }
  result.covered = (visited_count == n);
  result.rounds = round;
  result.final_visited = visited_count;
  return result;
}

}  // namespace cobra
