// SPDX-License-Identifier: MIT
#include "stats/regression.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace cobra {

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("fit_linear: size mismatch");
  }
  if (x.size() < 2) {
    throw std::invalid_argument("fit_linear: need >= 2 points");
  }
  const auto n = static_cast<double>(x.size());
  double sum_x = 0.0;
  double sum_y = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum_x += x[i];
    sum_y += y[i];
  }
  const double mean_x = sum_x / n;
  const double mean_y = sum_y / n;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) {
    throw std::invalid_argument("fit_linear: all x identical");
  }
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  if (syy == 0.0) {
    fit.r2 = 1.0;  // constant y fitted exactly by slope 0
  } else {
    fit.r2 = (sxy * sxy) / (sxx * syy);
  }
  return fit;
}

namespace {
std::vector<double> log_all(std::span<const double> values, const char* what) {
  std::vector<double> out;
  out.reserve(values.size());
  for (const double value : values) {
    if (value <= 0.0) {
      throw std::invalid_argument(std::string("log transform requires positive ") +
                                  what);
    }
    out.push_back(std::log(value));
  }
  return out;
}
}  // namespace

LinearFit fit_semilogx(std::span<const double> x, std::span<const double> y) {
  const auto lx = log_all(x, "x");
  return fit_linear(lx, y);
}

LinearFit fit_loglog(std::span<const double> x, std::span<const double> y) {
  const auto lx = log_all(x, "x");
  const auto ly = log_all(y, "y");
  return fit_linear(lx, ly);
}

}  // namespace cobra
