// SPDX-License-Identifier: MIT
//
// Exact quantiles with linear interpolation (type-7, the R/NumPy default).
#pragma once

#include <span>
#include <vector>

namespace cobra {

/// q-quantile of `values` (q in [0, 1]); takes a copy because selection is
/// destructive. Throws std::invalid_argument on empty input or bad q.
double quantile(std::vector<double> values, double q);

/// Convenience overloads on spans (copy internally).
double quantile(std::span<const double> values, double q);
double median(std::span<const double> values);

}  // namespace cobra
