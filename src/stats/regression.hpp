// SPDX-License-Identifier: MIT
//
// Ordinary least squares on (x, y) pairs, plus the log-transform helpers
// the scaling experiments use:
//  * Theorem 1/2 say rounds ~ a log n  -> fit rounds vs log n, check R^2.
//  * Grid experiment says rounds ~ n^(1/d) -> fit log rounds vs log n,
//    check the slope against 1/d.
#pragma once

#include <span>

namespace cobra {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

/// Throws std::invalid_argument if sizes differ or fewer than 2 points, or
/// if all x are identical.
LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

/// Fits y = a * ln(x) + b (x must be positive).
LinearFit fit_semilogx(std::span<const double> x, std::span<const double> y);

/// Fits ln(y) = slope * ln(x) + b, i.e. the power-law exponent (x, y > 0).
LinearFit fit_loglog(std::span<const double> x, std::span<const double> y);

}  // namespace cobra
