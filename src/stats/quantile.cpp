// SPDX-License-Identifier: MIT
#include "stats/quantile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cobra {

double quantile(std::vector<double> values, double q) {
  if (values.empty()) {
    throw std::invalid_argument("quantile of empty sample");
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile requires q in [0,1]");
  }
  // Type-7: h = (n-1) q, interpolate between floor and ceil order stats.
  const double h = static_cast<double>(values.size() - 1) * q;
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = static_cast<std::size_t>(std::ceil(h));
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(lo),
                   values.end());
  const double v_lo = values[lo];
  if (hi == lo) return v_lo;
  const double v_hi =
      *std::min_element(values.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
                        values.end());
  return v_lo + (h - static_cast<double>(lo)) * (v_hi - v_lo);
}

double quantile(std::span<const double> values, double q) {
  return quantile(std::vector<double>(values.begin(), values.end()), q);
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

}  // namespace cobra
