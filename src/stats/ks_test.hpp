// SPDX-License-Identifier: MIT
//
// Two-sample Kolmogorov-Smirnov test. Used by the test suite to verify
// distributional claims the z-test cannot see — e.g. that COBRA cover
// times from different start vertices of a vertex-transitive graph are
// identically distributed, not merely equal in mean.
#pragma once

#include <span>

namespace cobra {

struct KsResult {
  double statistic = 0.0;  ///< sup_x |F1(x) - F2(x)|
  double p_value = 1.0;    ///< asymptotic (Kolmogorov) two-sided p-value
};

/// Two-sample KS test; both samples must be non-empty (throws otherwise).
/// The asymptotic p-value is accurate for sample sizes >~ 25.
KsResult ks_two_sample(std::span<const double> sample1,
                       std::span<const double> sample2);

/// Kolmogorov distribution complement Q(x) = 2 sum_{j>=1} (-1)^{j-1}
/// exp(-2 j^2 x^2); exposed for direct testing.
double kolmogorov_tail(double x);

}  // namespace cobra
