// SPDX-License-Identifier: MIT
#include "stats/ztest.hpp"

#include <cmath>
#include <stdexcept>

namespace cobra {

double normal_two_sided_pvalue(double z) {
  return std::erfc(std::fabs(z) / std::sqrt(2.0));
}

ZTestResult two_proportion_ztest(std::uint64_t successes1, std::uint64_t n1,
                                 std::uint64_t successes2, std::uint64_t n2) {
  if (n1 == 0 || n2 == 0) {
    throw std::invalid_argument("two_proportion_ztest requires n1, n2 > 0");
  }
  if (successes1 > n1 || successes2 > n2) {
    throw std::invalid_argument("successes exceed sample size");
  }
  ZTestResult result;
  result.p1 = static_cast<double>(successes1) / static_cast<double>(n1);
  result.p2 = static_cast<double>(successes2) / static_cast<double>(n2);
  const double pooled = static_cast<double>(successes1 + successes2) /
                        static_cast<double>(n1 + n2);
  const double se = std::sqrt(pooled * (1.0 - pooled) *
                              (1.0 / static_cast<double>(n1) +
                               1.0 / static_cast<double>(n2)));
  if (se == 0.0) {
    // Both proportions are 0 or both are 1: identical, no evidence against H0.
    result.z = 0.0;
    result.p_value = 1.0;
    return result;
  }
  result.z = (result.p1 - result.p2) / se;
  result.p_value = normal_two_sided_pvalue(result.z);
  return result;
}

}  // namespace cobra
