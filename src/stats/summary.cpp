// SPDX-License-Identifier: MIT
#include "stats/summary.hpp"

#include <cstdio>
#include <stdexcept>

#include "stats/online.hpp"
#include "stats/quantile.hpp"

namespace cobra {

Summary summarize(std::span<const double> values) {
  if (values.empty()) {
    throw std::invalid_argument("summarize of empty sample");
  }
  OnlineStats online;
  for (const double value : values) online.add(value);
  Summary summary;
  summary.count = online.count();
  summary.mean = online.mean();
  summary.stddev = online.stddev();
  summary.min = online.min();
  summary.max = online.max();
  summary.median = quantile(values, 0.5);
  summary.p90 = quantile(values, 0.9);
  summary.p99 = quantile(values, 0.99);
  return summary;
}

std::string to_string(const Summary& summary) {
  char buffer[160];
  std::snprintf(buffer, sizeof buffer,
                "mean=%.3f sd=%.3f min=%.0f med=%.1f p90=%.1f p99=%.1f "
                "max=%.0f (n=%zu)",
                summary.mean, summary.stddev, summary.min, summary.median,
                summary.p90, summary.p99, summary.max, summary.count);
  return buffer;
}

}  // namespace cobra
