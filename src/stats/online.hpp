// SPDX-License-Identifier: MIT
//
// Welford's online moments: numerically stable streaming mean/variance
// without storing samples. Used by the growth-bound experiment (E7) where
// per-bucket sample counts are unbounded.
#pragma once

#include <cstddef>

namespace cobra {

class OnlineStats {
 public:
  void add(double value) noexcept;

  /// Reconstructs an accumulator from published moments (count, mean,
  /// sample variance, min, max) so archived summaries — e.g. scenario
  /// journal records — can be pooled with live streams via merge().
  static OnlineStats from_moments(std::size_t count, double mean,
                                  double variance, double min,
                                  double max) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Pools another accumulator into this one (parallel merge).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace cobra
