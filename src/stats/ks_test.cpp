// SPDX-License-Identifier: MIT
#include "stats/ks_test.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace cobra {

double kolmogorov_tail(double x) {
  if (x <= 0.0) return 1.0;
  double total = 0.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * x * x);
    total += (j % 2 == 1) ? term : -term;
    if (term < 1e-16) break;
  }
  return std::clamp(2.0 * total, 0.0, 1.0);
}

KsResult ks_two_sample(std::span<const double> sample1,
                       std::span<const double> sample2) {
  if (sample1.empty() || sample2.empty()) {
    throw std::invalid_argument("ks_two_sample requires non-empty samples");
  }
  std::vector<double> a(sample1.begin(), sample1.end());
  std::vector<double> b(sample2.begin(), sample2.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const auto n1 = static_cast<double>(a.size());
  const auto n2 = static_cast<double>(b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  double d = 0.0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::fabs(static_cast<double>(i) / n1 -
                              static_cast<double>(j) / n2));
  }
  KsResult result;
  result.statistic = d;
  const double effective = std::sqrt(n1 * n2 / (n1 + n2));
  // Small-sample continuity correction (Stephens).
  const double z = (effective + 0.12 + 0.11 / effective) * d;
  result.p_value = kolmogorov_tail(z);
  return result;
}

}  // namespace cobra
