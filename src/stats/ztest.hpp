// SPDX-License-Identifier: MIT
//
// Two-proportion z-test. The duality experiment (Theorem 4) estimates the
// same probability through two different processes (COBRA hitting tails vs
// BIPS membership) and tests that the difference is statistical noise.
#pragma once

#include <cstdint>

namespace cobra {

struct ZTestResult {
  double p1 = 0.0;       ///< successes1 / n1
  double p2 = 0.0;       ///< successes2 / n2
  double z = 0.0;        ///< pooled z statistic (0 when both pools agree trivially)
  double p_value = 1.0;  ///< two-sided
};

/// H0: the two samples draw from Bernoulli variables with equal p.
/// Throws std::invalid_argument if n1 == 0 or n2 == 0.
ZTestResult two_proportion_ztest(std::uint64_t successes1, std::uint64_t n1,
                                 std::uint64_t successes2, std::uint64_t n2);

/// Standard normal two-sided tail probability P(|Z| >= z).
double normal_two_sided_pvalue(double z);

}  // namespace cobra
