// SPDX-License-Identifier: MIT
#include "stats/chi_square.hpp"

#include <cmath>
#include <stdexcept>

namespace cobra {

namespace {

/// Regularized upper incomplete gamma Q(a, x) by series/continued
/// fraction (Numerical Recipes style), accurate to ~1e-12 for the
/// moderate arguments tests use.
double upper_gamma_regularized(double a, double x) {
  if (x < 0.0 || a <= 0.0) throw std::invalid_argument("gamma domain");
  if (x == 0.0) return 1.0;
  const double log_gamma_a = std::lgamma(a);
  if (x < a + 1.0) {
    // P(a,x) by series, return 1 - P.
    double term = 1.0 / a;
    double sum = term;
    double denominator = a;
    for (int i = 0; i < 500; ++i) {
      denominator += 1.0;
      term *= x / denominator;
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * 1e-15) break;
    }
    const double p = sum * std::exp(-x + a * std::log(x) - log_gamma_a);
    return 1.0 - p;
  }
  // Q(a,x) by Lentz continued fraction.
  double b = x + 1.0 - a;
  double c = 1e308;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - log_gamma_a);
}

}  // namespace

double chi_square_tail(double x, std::size_t dof) {
  if (dof == 0) throw std::invalid_argument("chi_square_tail: dof >= 1");
  if (x <= 0.0) return 1.0;
  return upper_gamma_regularized(static_cast<double>(dof) / 2.0, x / 2.0);
}

ChiSquareResult chi_square_test(std::span<const std::uint64_t> observed,
                                std::span<const double> expected) {
  if (observed.size() != expected.size() || observed.size() < 2) {
    throw std::invalid_argument("chi_square_test: need >= 2 matching bins");
  }
  ChiSquareResult result;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] <= 0.0) {
      throw std::invalid_argument("chi_square_test: expected counts > 0");
    }
    const double diff = static_cast<double>(observed[i]) - expected[i];
    result.statistic += diff * diff / expected[i];
  }
  result.degrees_of_freedom = observed.size() - 1;
  result.p_value = chi_square_tail(result.statistic, result.degrees_of_freedom);
  return result;
}

}  // namespace cobra
