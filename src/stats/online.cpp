// SPDX-License-Identifier: MIT
#include "stats/online.hpp"

#include <algorithm>
#include <cmath>

namespace cobra {

void OnlineStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

OnlineStats OnlineStats::from_moments(std::size_t count, double mean,
                                      double variance, double min,
                                      double max) noexcept {
  OnlineStats stats;
  stats.count_ = count;
  stats.mean_ = mean;
  stats.m2_ = count >= 2 ? variance * static_cast<double>(count - 1) : 0.0;
  stats.min_ = min;
  stats.max_ = max;
  return stats;
}

double OnlineStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace cobra
