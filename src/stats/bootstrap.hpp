// SPDX-License-Identifier: MIT
//
// Percentile bootstrap confidence interval for the sample mean — the
// experiment tables report mean cover times with CI so "who wins" claims
// in EXPERIMENTS.md rest on overlapping-interval checks, not eyeballing.
#pragma once

#include <cstddef>
#include <span>

#include "rand/rng.hpp"

namespace cobra {

struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Percentile bootstrap CI for the mean at the given confidence level
/// (e.g. 0.95). Throws std::invalid_argument on empty samples or
/// confidence outside (0, 1).
Interval bootstrap_mean_ci(std::span<const double> values,
                           std::size_t resamples, double confidence, Rng& rng);

}  // namespace cobra
