// SPDX-License-Identifier: MIT
//
// Chi-square goodness-of-fit test against given expected counts. Used to
// audit the RNG substrate (uniformity of next_below, neighbour picks) and
// the process engines' choice distributions against exact::*.
#pragma once

#include <cstdint>
#include <span>

namespace cobra {

struct ChiSquareResult {
  double statistic = 0.0;
  std::size_t degrees_of_freedom = 0;
  double p_value = 1.0;
};

/// Tests observed counts against expected counts (same length >= 2; every
/// expected > 0; throws otherwise). dof = bins - 1.
ChiSquareResult chi_square_test(std::span<const std::uint64_t> observed,
                                std::span<const double> expected);

/// Upper tail of the chi-square distribution with k dof at x, via the
/// regularized incomplete gamma Q(k/2, x/2). Exposed for direct tests.
double chi_square_tail(double x, std::size_t dof);

}  // namespace cobra
