// SPDX-License-Identifier: MIT
//
// Five-number-plus summary of a Monte Carlo sample. The experiments report
// mean (expectation results, e.g. COV(G)) alongside p90/p99/max (the
// paper's w.h.p. statements surface as concentrated upper quantiles).
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace cobra {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Throws std::invalid_argument on an empty sample.
Summary summarize(std::span<const double> values);

/// "mean=12.3 p90=15 max=17 (n=100)" — compact log line for examples.
std::string to_string(const Summary& summary);

}  // namespace cobra
