// SPDX-License-Identifier: MIT
#include "stats/bootstrap.hpp"

#include <stdexcept>
#include <vector>

#include "stats/quantile.hpp"

namespace cobra {

Interval bootstrap_mean_ci(std::span<const double> values,
                           std::size_t resamples, double confidence,
                           Rng& rng) {
  if (values.empty()) {
    throw std::invalid_argument("bootstrap_mean_ci of empty sample");
  }
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("confidence must be in (0, 1)");
  }
  if (resamples == 0) {
    throw std::invalid_argument("resamples must be positive");
  }
  std::vector<double> means;
  means.reserve(resamples);
  const std::size_t n = values.size();
  for (std::size_t b = 0; b < resamples; ++b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += values[static_cast<std::size_t>(rng.next_below(n))];
    }
    means.push_back(acc / static_cast<double>(n));
  }
  const double alpha = (1.0 - confidence) / 2.0;
  Interval interval;
  interval.lo = quantile(means, alpha);
  interval.hi = quantile(means, 1.0 - alpha);
  return interval;
}

}  // namespace cobra
