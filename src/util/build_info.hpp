// SPDX-License-Identifier: MIT
//
// Build provenance: git hash, compiler, and flags baked in at configure
// time (CMake passes them as compile definitions on build_info.cpp).
// Surfaced by `scenario_runner --version`, embedded in the distributed
// handshake, and stamped into journal header notes so a cross-machine
// campaign records exactly which binaries produced which frames.
#pragma once

#include <string>

namespace cobra {

/// Short git hash (plus "-dirty" when the tree had local edits at
/// configure time); "unknown" outside a git checkout.
std::string build_git_hash();

/// "<compiler-id> <version>", e.g. "GNU 13.2.0".
std::string build_compiler();

/// Build type plus the effective CXX flags, e.g. "Release -O3 -DNDEBUG".
std::string build_flags();

/// One-line summary "git=<hash> compiler=<id ver> flags=<...>" — the form
/// used by --version, the handshake, and journal notes.
std::string build_info_string();

}  // namespace cobra
