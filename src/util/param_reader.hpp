// SPDX-License-Identifier: MIT
//
// Shared reader for declaration-ordered string (key, value) parameter
// lists — the shape both scenario specs and the process factory resolve
// to. Tracks which keys were consumed so finish() can reject leftovers
// loudly (typo protection: a mistyped key names itself instead of being
// ignored), and parses numbers with strict full-consumption semantics.
// Templated on the exception type so each layer reports its own error
// class (SpecError for graph families, ProcessFactoryError for
// processes) with identical message formats.
#pragma once

#include <charconv>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cobra {

template <typename Error>
class ParamReader {
 public:
  using Params = std::vector<std::pair<std::string, std::string>>;

  ParamReader(const Params& params, std::string context)
      : params_(params),
        context_(std::move(context)),
        touched_(params.size(), false) {}

  /// True if `key` is present; marks it consumed either way.
  bool has(std::string_view key) { return lookup(key) != nullptr; }

  std::string get(std::string_view key, std::string_view fallback) {
    const std::string* v = lookup(key);
    return v != nullptr ? *v : std::string(fallback);
  }

  std::string require(std::string_view key) {
    const std::string* v = lookup(key);
    if (v == nullptr) {
      throw Error(context_ + ": missing required parameter '" +
                  std::string(key) + "'");
    }
    return *v;
  }

  std::int64_t get_int(std::string_view key, std::int64_t fallback) {
    const std::string* v = lookup(key);
    return v == nullptr ? fallback : to_int(key, *v);
  }

  std::int64_t require_int(std::string_view key) {
    return to_int(key, require(key));
  }

  std::size_t require_size(std::string_view key) {
    const std::int64_t v = require_int(key);
    if (v < 0) {
      throw Error(context_ + ": parameter '" + std::string(key) +
                  "' must be non-negative");
    }
    return static_cast<std::size_t>(v);
  }

  double get_double(std::string_view key, double fallback) {
    const std::string* v = lookup(key);
    return v == nullptr ? fallback : to_double(key, *v);
  }

  double require_double(std::string_view key) {
    return to_double(key, require(key));
  }

  /// 'x'-separated positive integers, e.g. dims = 32x32, offsets = 1x2x5.
  std::vector<std::size_t> require_size_list(std::string_view key) {
    const std::string text = require(key);
    std::vector<std::size_t> out;
    std::size_t begin = 0;
    while (begin <= text.size()) {
      const std::size_t sep = text.find('x', begin);
      const std::size_t end = sep == std::string::npos ? text.size() : sep;
      out.push_back(static_cast<std::size_t>(
          to_int(key, text.substr(begin, end - begin))));
      if (sep == std::string::npos) break;
      begin = sep + 1;
    }
    return out;
  }

  /// Throws if any parameter was never consumed (typo protection).
  void finish() const {
    for (std::size_t i = 0; i < params_.size(); ++i) {
      if (!touched_[i]) {
        throw Error(context_ + ": unknown parameter '" + params_[i].first +
                    "'");
      }
    }
  }

 private:
  const std::string* lookup(std::string_view key) {
    for (std::size_t i = 0; i < params_.size(); ++i) {
      if (params_[i].first == key) {
        touched_[i] = true;
        return &params_[i].second;
      }
    }
    return nullptr;
  }

  std::int64_t to_int(std::string_view key, const std::string& text) const {
    std::int64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
      throw Error(context_ + ": parameter '" + std::string(key) +
                  "' expects an integer, got '" + text + "'");
    }
    return value;
  }

  double to_double(std::string_view key, const std::string& text) const {
    double value = 0.0;
    std::size_t used = 0;
    try {
      value = std::stod(text, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (text.empty() || used != text.size()) {
      throw Error(context_ + ": parameter '" + std::string(key) +
                  "' expects a number, got '" + text + "'");
    }
    return value;
  }

  const Params& params_;
  std::string context_;
  std::vector<bool> touched_;
};

}  // namespace cobra
