// SPDX-License-Identifier: MIT
//
// Experiment sizing. Every bench binary accepts --scale small|medium|large
// (default from $COBRA_SCALE, else "small" so that `for b in build/bench/*`
// completes in minutes). The Scale object centralizes how sweep endpoints
// and trial counts grow so experiment code stays declarative.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "util/flags.hpp"

namespace cobra {

enum class ScaleLevel { kSmall, kMedium, kLarge };

struct Scale {
  ScaleLevel level = ScaleLevel::kSmall;

  /// Parses "small" / "medium" / "large" (throws on anything else).
  static Scale parse(std::string_view name);

  /// Resolves the level from --scale, then $COBRA_SCALE, then small.
  static Scale from_flags(const Flags& flags);

  /// Picks one of three values by level.
  template <typename T>
  T pick(T small, T medium, T large) const {
    switch (level) {
      case ScaleLevel::kMedium: return medium;
      case ScaleLevel::kLarge: return large;
      case ScaleLevel::kSmall: default: return small;
    }
  }

  std::string name() const;
};

}  // namespace cobra
