// SPDX-License-Identifier: MIT
#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace cobra {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table requires at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row has " + std::to_string(cells.size()) +
                                " cells, expected " +
                                std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string Table::cell(std::int64_t value) { return std::to_string(value); }
std::string Table::cell(std::uint64_t value) { return std::to_string(value); }

std::string Table::cell(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace cobra
