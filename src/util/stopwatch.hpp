// SPDX-License-Identifier: MIT
//
// Wall-clock stopwatch used by experiment binaries to report run time.
#pragma once

#include <chrono>

namespace cobra {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last reset().
  double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cobra
