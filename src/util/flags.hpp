// SPDX-License-Identifier: MIT
//
// A minimal command-line flag parser for the experiment harnesses and
// examples. Supports --name=value, --name value, and bare boolean --name.
// Unknown flags are collected so binaries can warn instead of crashing
// (google-benchmark passes its own flags through the same argv).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace cobra {

class Flags {
 public:
  /// Parses argv. Arguments not starting with "--" are kept as positionals.
  Flags(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  bool has(std::string_view name) const;

  /// Value lookups with defaults. get_int/get_double throw
  /// std::invalid_argument on malformed numbers (fail loudly, per I.10).
  std::string get(std::string_view name, std::string_view fallback) const;
  std::int64_t get_int(std::string_view name, std::int64_t fallback) const;
  double get_double(std::string_view name, double fallback) const;
  bool get_bool(std::string_view name, bool fallback) const;

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// Names seen on the command line but never queried via get*/has.
  /// Call at the end of main to warn about typos.
  std::vector<std::string> unconsumed() const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
  mutable std::map<std::string, bool, std::less<>> consumed_;
  std::vector<std::string> positionals_;
};

}  // namespace cobra
