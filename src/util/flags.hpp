// SPDX-License-Identifier: MIT
//
// A minimal command-line flag parser for the experiment harnesses and
// examples. Supports --name=value, --name value, and bare boolean --name.
// Unknown flags are collected so binaries can warn instead of crashing
// (google-benchmark passes its own flags through the same argv).
//
// Every get*/has call is additionally recorded as a FlagQuery (name, type,
// default), so a binary can generate its own --help text from the flags it
// actually consults — see print_help and bench/exp_common.hpp.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace cobra {

/// One recorded flag lookup: the flag's name, its value kind ("flag",
/// "string", "int", "number", "bool"), and the default used when absent.
struct FlagQuery {
  std::string name;
  std::string kind;
  std::string fallback;
};

class Flags {
 public:
  /// Parses argv. Arguments not starting with "--" are kept as positionals.
  Flags(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  bool has(std::string_view name) const;

  /// Value lookups with defaults. get_int/get_double throw
  /// std::invalid_argument on malformed numbers (fail loudly, per I.10).
  std::string get(std::string_view name, std::string_view fallback) const;
  std::int64_t get_int(std::string_view name, std::int64_t fallback) const;
  double get_double(std::string_view name, double fallback) const;
  bool get_bool(std::string_view name, bool fallback) const;

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// Names seen on the command line but never queried via get*/has.
  /// Call at the end of main to warn about typos.
  std::vector<std::string> unconsumed() const;

  /// Prints "warning: unrecognized flag --x" lines for unconsumed flags.
  void warn_unconsumed(std::ostream& os) const;

  /// True if --help was passed (consumes it).
  bool help_requested() const { return has("help"); }

  /// Every flag this binary queried so far, in first-query order.
  const std::vector<FlagQuery>& queried() const { return queried_; }

  /// Renders the queried flags as --help text, one line per flag. Callers
  /// that query flags lazily should invoke this after their run (see
  /// ExperimentEnv::finish); callers with a static flag set can query
  /// everything up front and print immediately.
  void print_help(std::ostream& os) const;

 private:
  void record_query(std::string_view name, std::string_view kind,
                    std::string fallback) const;

  std::map<std::string, std::string, std::less<>> values_;
  mutable std::map<std::string, bool, std::less<>> consumed_;
  mutable std::vector<FlagQuery> queried_;
  std::vector<std::string> positionals_;
};

}  // namespace cobra
