// SPDX-License-Identifier: MIT
#include "util/flags.hpp"

#include <charconv>
#include <stdexcept>

namespace cobra {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) {
      positionals_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      continue;
    }
    // "--name value" if the next token is not itself a flag; bare boolean
    // otherwise.
    if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      values_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      values_[std::string(arg)] = "";
    }
  }
}

bool Flags::has(std::string_view name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return false;
  consumed_[it->first] = true;
  return true;
}

std::string Flags::get(std::string_view name, std::string_view fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::string(fallback);
  consumed_[it->first] = true;
  return it->second;
}

std::int64_t Flags::get_int(std::string_view name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  consumed_[it->first] = true;
  std::int64_t value = 0;
  const auto& text = it->second;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw std::invalid_argument("flag --" + it->first +
                                " expects an integer, got '" + text + "'");
  }
  return value;
}

double Flags::get_double(std::string_view name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  consumed_[it->first] = true;
  try {
    std::size_t used = 0;
    const double value = std::stod(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + it->first +
                                " expects a number, got '" + it->second + "'");
  }
}

bool Flags::get_bool(std::string_view name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  consumed_[it->first] = true;
  const auto& text = it->second;
  if (text.empty() || text == "1" || text == "true" || text == "yes") {
    return true;
  }
  if (text == "0" || text == "false" || text == "no") return false;
  throw std::invalid_argument("flag --" + it->first +
                              " expects a boolean, got '" + text + "'");
}

std::vector<std::string> Flags::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (const auto it = consumed_.find(name);
        it == consumed_.end() || !it->second) {
      out.push_back(name);
    }
  }
  return out;
}

}  // namespace cobra
