// SPDX-License-Identifier: MIT
#include "util/flags.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace cobra {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) {
      positionals_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      continue;
    }
    // "--name value" if the next token is not itself a flag; bare boolean
    // otherwise.
    if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      values_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      values_[std::string(arg)] = "";
    }
  }
}

void Flags::record_query(std::string_view name, std::string_view kind,
                         std::string fallback) const {
  for (const auto& query : queried_) {
    if (query.name == name) return;
  }
  queried_.push_back(
      {std::string(name), std::string(kind), std::move(fallback)});
}

bool Flags::has(std::string_view name) const {
  record_query(name, "flag", "");
  const auto it = values_.find(name);
  if (it == values_.end()) return false;
  consumed_[it->first] = true;
  return true;
}

std::string Flags::get(std::string_view name, std::string_view fallback) const {
  record_query(name, "string", std::string(fallback));
  const auto it = values_.find(name);
  if (it == values_.end()) return std::string(fallback);
  consumed_[it->first] = true;
  return it->second;
}

std::int64_t Flags::get_int(std::string_view name, std::int64_t fallback) const {
  record_query(name, "int", std::to_string(fallback));
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  consumed_[it->first] = true;
  std::int64_t value = 0;
  const auto& text = it->second;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw std::invalid_argument("flag --" + it->first +
                                " expects an integer, got '" + text + "'");
  }
  return value;
}

double Flags::get_double(std::string_view name, double fallback) const {
  {
    char buffer[48];
    std::snprintf(buffer, sizeof buffer, "%g", fallback);
    record_query(name, "number", buffer);
  }
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  consumed_[it->first] = true;
  try {
    std::size_t used = 0;
    const double value = std::stod(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + it->first +
                                " expects a number, got '" + it->second + "'");
  }
}

bool Flags::get_bool(std::string_view name, bool fallback) const {
  record_query(name, "bool", fallback ? "true" : "false");
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  consumed_[it->first] = true;
  const auto& text = it->second;
  if (text.empty() || text == "1" || text == "true" || text == "yes") {
    return true;
  }
  if (text == "0" || text == "false" || text == "no") return false;
  throw std::invalid_argument("flag --" + it->first +
                              " expects a boolean, got '" + text + "'");
}

std::vector<std::string> Flags::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (const auto it = consumed_.find(name);
        it == consumed_.end() || !it->second) {
      out.push_back(name);
    }
  }
  return out;
}

void Flags::warn_unconsumed(std::ostream& os) const {
  for (const auto& name : unconsumed()) {
    os << "warning: unrecognized flag --" << name << "\n";
  }
}

void Flags::print_help(std::ostream& os) const {
  std::vector<FlagQuery> sorted = queried_;
  std::sort(sorted.begin(), sorted.end(),
            [](const FlagQuery& a, const FlagQuery& b) {
              return a.name < b.name;
            });
  for (const auto& query : sorted) {
    std::string left = "  --" + query.name;
    if (query.kind != "flag") left += " <" + query.kind + ">";
    os << left;
    for (std::size_t pad = left.size(); pad < 28; ++pad) os << ' ';
    if (query.kind == "flag") {
      os << "(boolean switch)";
    } else {
      os << "default: " << (query.fallback.empty() ? "\"\"" : query.fallback);
    }
    os << "\n";
  }
}

}  // namespace cobra
