// SPDX-License-Identifier: MIT
#include "util/build_info.hpp"

// CMake defines these on this translation unit only, so an edit to the
// flags or a new commit recompiles one file, not the library.
#ifndef COBRA_GIT_HASH
#define COBRA_GIT_HASH "unknown"
#endif
#ifndef COBRA_COMPILER
#define COBRA_COMPILER "unknown"
#endif
#ifndef COBRA_BUILD_FLAGS
#define COBRA_BUILD_FLAGS "unknown"
#endif

namespace cobra {

std::string build_git_hash() { return COBRA_GIT_HASH; }

std::string build_compiler() { return COBRA_COMPILER; }

std::string build_flags() { return COBRA_BUILD_FLAGS; }

std::string build_info_string() {
  return "git=" + build_git_hash() + " compiler=" + build_compiler() +
         " flags=" + build_flags();
}

}  // namespace cobra
