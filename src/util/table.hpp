// SPDX-License-Identifier: MIT
//
// Fixed-width table printer. Every experiment binary in bench/ prints the
// rows/series the paper's claims predict through this class, so output is
// uniform and machine-greppable (also emits optional CSV).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace cobra {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; cells convert via overloads. Row length must equal the
  /// header count (checked, throws std::invalid_argument).
  void add_row(std::vector<std::string> cells);

  /// Cell conversion helpers used by experiment binaries.
  static std::string cell(std::int64_t value);
  static std::string cell(std::uint64_t value);
  static std::string cell(double value, int precision = 3);
  static std::string cell(const std::string& value) { return value; }

  /// Renders an aligned ASCII table with a separator under the header.
  void print(std::ostream& os) const;

  /// Renders as CSV (for plotting pipelines).
  void print_csv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cobra
