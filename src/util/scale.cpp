// SPDX-License-Identifier: MIT
#include "util/scale.hpp"

#include <cstdlib>
#include <stdexcept>

namespace cobra {

Scale Scale::parse(std::string_view name) {
  if (name == "small") return {ScaleLevel::kSmall};
  if (name == "medium") return {ScaleLevel::kMedium};
  if (name == "large") return {ScaleLevel::kLarge};
  throw std::invalid_argument("unknown scale '" + std::string(name) +
                              "' (expected small|medium|large)");
}

Scale Scale::from_flags(const Flags& flags) {
  std::string fallback = "small";
  if (const char* env = std::getenv("COBRA_SCALE"); env != nullptr && *env) {
    fallback = env;
  }
  return parse(flags.get("scale", fallback));
}

std::string Scale::name() const {
  switch (level) {
    case ScaleLevel::kMedium: return "medium";
    case ScaleLevel::kLarge: return "large";
    case ScaleLevel::kSmall: default: return "small";
  }
}

}  // namespace cobra
