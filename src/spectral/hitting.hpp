// SPDX-License-Identifier: MIT
//
// Exact expected hitting times of the SIMPLE random walk (COBRA's k = 1
// degenerate case) by solving the absorbing-chain linear system
//   h(v) = 0,   h(u) = 1 + (1/d(u)) sum_{w ~ u} h(w)   for u != v.
// Used to certify the k = 1 baselines: the Omega(n log n) cover bound the
// paper quotes (via Matthews' bound from these hitting times) and the
// E11 separation experiment. Dense Gaussian elimination; n <= 2048.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace cobra::spectral {

/// Expected hitting times E[T_target | start = u] for all u (entry at
/// `target` is 0). Precondition: g connected, min degree >= 1, n <= 2048.
std::vector<double> expected_hitting_times(const Graph& g, Vertex target);

/// max_u E[T_v | start = u] over the given target — one row of the
/// worst-case hitting profile.
double max_hitting_time(const Graph& g, Vertex target);

/// Matthews' bounds on the expected cover time of the walk:
///   lower: min_{u != v} H(u, v) * H_{n-1},
///   upper: max_{u != v} H(u, v) * H_{n-1},   H_k = 1 + 1/2 + ... + 1/k.
/// Exact H(u,v) for all pairs is O(n) linear solves = O(n^4) worst case;
/// this helper restricts to a vertex sample for large n (exact for
/// n <= sample_cap).
struct MatthewsBounds {
  double lower = 0.0;
  double upper = 0.0;
};
MatthewsBounds matthews_cover_bounds(const Graph& g,
                                     std::size_t sample_cap = 64);

/// Solves the dense linear system A x = b in-place via partial-pivot
/// Gaussian elimination (throws std::invalid_argument on singular A or
/// size mismatch). Exposed for direct testing.
std::vector<double> solve_dense(std::vector<double> a, std::vector<double> b,
                                std::size_t n);

}  // namespace cobra::spectral
