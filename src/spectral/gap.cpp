// SPDX-License-Identifier: MIT
#include "spectral/gap.hpp"

#include <cmath>

#include "spectral/jacobi.hpp"
#include "spectral/lanczos.hpp"

namespace cobra::spectral {

SpectralReport spectral_report(const Graph& g) {
  SpectralReport report;
  if (g.num_vertices() <= 256) {
    const auto spectrum = dense_spectrum(g);  // descending
    report.lambda2 = spectrum.size() > 1 ? spectrum[1] : 0.0;
    report.lambda_min = spectrum.back();
    report.method = "jacobi";
    report.converged = true;
  } else {
    const auto result = second_eigenvalue_lanczos(g);
    report.lambda2 = result.lambda2;
    report.lambda_min = result.lambda_min;
    report.method = "lanczos";
    report.converged = result.converged;
  }
  report.lambda = std::max(std::fabs(report.lambda2),
                           std::fabs(report.lambda_min));
  report.gap = 1.0 - report.lambda;
  return report;
}

}  // namespace cobra::spectral
