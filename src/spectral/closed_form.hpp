// SPDX-License-Identifier: MIT
//
// Closed-form spectra for the classical families. These are analytic
// facts about the transition matrix P (equivalently N); the test suite
// checks the numerical solvers against them, and the gap-ladder
// experiments use them to label series.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace cobra::spectral {

/// lambda (second-largest absolute eigenvalue of P) of K_n: 1/(n-1).
double lambda_complete(std::size_t n);

/// lambda of the cycle C_n: max_j |cos(2 pi j / n)| over j = 1..n-1.
/// For even n this is 1 (bipartite, j = n/2). For odd n the extreme is the
/// *negative* edge of the spectrum at j = (n-1)/2, giving cos(pi / n)
/// (which exceeds the positive edge cos(2 pi / n)).
double lambda_cycle(std::size_t n);

/// lambda of the hypercube Q_d: eigenvalues are 1 - 2i/d, so lambda = 1
/// (bipartite) for every d >= 1.
double lambda_hypercube(std::size_t d);

/// lambda of the torus with the given side lengths: eigenvalues are
/// (1/d) sum_i cos(2 pi j_i / n_i); computed by enumerating all tuples.
double lambda_torus(const std::vector<std::size_t>& dims);

/// lambda of the circulant C_n(S): eigenvalue_j is the normalized sum of
/// cos terms over the offsets (an offset n/2 contributes cos(pi j) once).
double lambda_circulant(std::size_t n,
                        const std::vector<std::uint32_t>& offsets);

/// lambda of the complete bipartite graph K_{a,b}: spectrum {1, 0, -1},
/// so lambda = 1.
double lambda_complete_bipartite();

/// lambda of the Petersen graph: adjacency spectrum {3, 1^5, (-2)^4}
/// gives P spectrum {1, (1/3)^5, (-2/3)^4}, so lambda = 2/3.
double lambda_petersen();

/// lambda of the Paley graph on q vertices: adjacency eigenvalues are
/// (q-1)/2 and (-1 +- sqrt(q))/2, so lambda = (sqrt(q)+1)/(q-1).
double lambda_paley(std::size_t q);

/// lambda of the Kneser graph K(n, k): adjacency eigenvalues are
/// (-1)^i C(n-k-i, k-i) for i = 0..k; lambda is the largest ratio
/// |eigenvalue| / C(n-k, k) over i >= 1 (equals k/(n-k) when n >= 2k+1
/// is moderate; computed exactly here).
double lambda_kneser(std::size_t n_set, std::size_t k_subset);

/// Full P spectrum of the cycle (descending). For tests of dense solvers.
std::vector<double> spectrum_cycle(std::size_t n);

/// Full P spectrum of K_n (descending).
std::vector<double> spectrum_complete(std::size_t n);

/// Full P spectrum of the hypercube Q_d (descending, with multiplicity).
std::vector<double> spectrum_hypercube(std::size_t d);

}  // namespace cobra::spectral
