// SPDX-License-Identifier: MIT
#include "spectral/conductance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "rand/rng.hpp"
#include "spectral/matvec.hpp"

namespace cobra::spectral {

double set_conductance(const Graph& g, const std::vector<char>& in_set) {
  const std::size_t n = g.num_vertices();
  if (in_set.size() != n) {
    throw std::invalid_argument("set_conductance: indicator size mismatch");
  }
  std::size_t cut = 0;
  std::size_t vol_in = 0;
  std::size_t vol_total = 0;
  for (Vertex v = 0; v < n; ++v) {
    vol_total += g.degree(v);
    if (!in_set[v]) continue;
    vol_in += g.degree(v);
    for (const Vertex w : g.neighbors(v)) cut += !in_set[w];
  }
  const std::size_t vol_out = vol_total - vol_in;
  if (vol_in == 0 || vol_out == 0) {
    throw std::invalid_argument("set_conductance: S and complement must be "
                                "non-empty with positive volume");
  }
  return static_cast<double>(cut) /
         static_cast<double>(std::min(vol_in, vol_out));
}

double exact_conductance(const Graph& g) {
  const std::size_t n = g.num_vertices();
  if (n < 2 || n > 24) {
    throw std::invalid_argument("exact_conductance supports 2 <= n <= 24");
  }
  double best = std::numeric_limits<double>::infinity();
  std::vector<char> indicator(n, 0);
  // Fix vertex n-1 outside S to halve the enumeration (h(S) = h(V-S)).
  const std::size_t limit = std::size_t{1} << (n - 1);
  for (std::size_t mask = 1; mask < limit; ++mask) {
    for (Vertex v = 0; v + 1 < n; ++v) {
      indicator[v] = static_cast<char>((mask >> v) & 1u);
    }
    best = std::min(best, set_conductance(g, indicator));
  }
  return best;
}

SweepCutResult sweep_cut(const Graph& g) {
  const std::size_t n = g.num_vertices();
  if (n < 2) throw std::invalid_argument("sweep_cut requires n >= 2");

  // Deflated power iteration on the PSD shift M = (I + N)/2. Plain
  // iteration on N converges to the largest-|lambda| eigenvector, which on
  // near-bipartite graphs is lambda_n's bipartition vector — useless for
  // Cheeger. M has spectrum (1 + lambda_i)/2 >= 0, so the dominant
  // non-trivial eigenvector of M is exactly lambda_2's.
  const std::vector<double> phi1 = stationary_direction(g);
  std::vector<double> x(n);
  Rng rng(0x5feedcu);
  for (double& value : x) value = rng.next_double() - 0.5;
  deflate(x, phi1);
  normalize(x);
  std::vector<double> y(n);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    multiply_normalized(g, x, y);
    for (std::size_t i = 0; i < n; ++i) y[i] = 0.5 * (y[i] + x[i]);
    deflate(y, phi1);
    if (normalize(y) == 0.0) break;
    x.swap(y);
  }

  // Sweep in the D^{-1/2}-scaled order (for regular graphs this is the
  // raw eigenvector order).
  std::vector<Vertex> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::vector<double> score(n);
  for (Vertex v = 0; v < n; ++v) {
    score[v] = x[v] / std::sqrt(static_cast<double>(g.degree(v)));
  }
  std::sort(order.begin(), order.end(),
            [&score](Vertex a, Vertex b) { return score[a] < score[b]; });

  // Incremental conductance over prefixes.
  std::size_t vol_total = 0;
  for (Vertex v = 0; v < n; ++v) vol_total += g.degree(v);
  std::vector<char> in_set(n, 0);
  SweepCutResult best;
  best.conductance = std::numeric_limits<double>::infinity();
  std::size_t cut = 0;
  std::size_t vol_in = 0;
  std::vector<char> current(n, 0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const Vertex v = order[i];
    current[v] = 1;
    vol_in += g.degree(v);
    // Adding v flips each (v, w) edge: cut edges to outside increase,
    // edges to inside stop being cut.
    for (const Vertex w : g.neighbors(v)) {
      if (current[w]) {
        --cut;
      } else {
        ++cut;
      }
    }
    const std::size_t vol_out = vol_total - vol_in;
    if (vol_in == 0 || vol_out == 0) continue;
    const double phi = static_cast<double>(cut) /
                       static_cast<double>(std::min(vol_in, vol_out));
    if (phi < best.conductance) {
      best.conductance = phi;
      best.indicator = current;
      best.set_size = i + 1;
    }
  }
  return best;
}

}  // namespace cobra::spectral
