// SPDX-License-Identifier: MIT
//
// Conductance and sweep cuts. The paper's "expander" hypothesis is
// spectral (1 - lambda = Omega(1)); Cheeger's inequality ties it to
// combinatorial expansion:
//   (1 - lambda_2) / 2  <=  h(G)  <=  sqrt(2 (1 - lambda_2)),
// where h(G) = min_S cut(S) / min(vol S, vol \bar S). This module computes
// h exactly on tiny graphs (subset enumeration) and approximately via the
// classical spectral sweep cut elsewhere — used by tests to validate the
// solvers and by the atlas to label instances as true expanders.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace cobra::spectral {

/// Conductance of the vertex set S (given as a 0/1 indicator):
/// cut(S, V-S) / min(vol(S), vol(V-S)). Throws std::invalid_argument if S
/// or its complement is empty (or sizes mismatch).
double set_conductance(const Graph& g, const std::vector<char>& in_set);

/// Exact graph conductance h(G) by enumerating all 2^(n-1)-1 proper cuts.
/// Throws for n < 2 or n > 24.
double exact_conductance(const Graph& g);

struct SweepCutResult {
  double conductance = 1.0;          ///< best prefix-cut conductance found
  std::vector<char> indicator;       ///< the achieving set
  std::size_t set_size = 0;
};

/// Spectral sweep cut: orders vertices by the (deflated) dominant
/// eigenvector of the normalized adjacency scaled by D^{-1/2} and returns
/// the best prefix cut. By Cheeger, its conductance is at most
/// sqrt(2 (1 - lambda_2)). Precondition: g connected, n >= 2.
SweepCutResult sweep_cut(const Graph& g);

}  // namespace cobra::spectral
