// SPDX-License-Identifier: MIT
//
// Sparse matrix-vector kernels for random-walk spectra.
//
// The paper's parameter is lambda, the second-largest absolute eigenvalue
// of the transition matrix P = A/r of an r-regular graph. For irregular
// graphs we use the symmetric normalized adjacency
//   N = D^{-1/2} A D^{-1/2},
// which is similar to P = D^{-1} A (same spectrum) and coincides with it
// on regular graphs. All solvers in this module operate on N so that
// symmetric eigenvalue machinery (Lanczos, Jacobi) applies uniformly.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace cobra::spectral {

/// y = N x with N the normalized adjacency. Requires x.size() == y.size()
/// == n; isolated vertices contribute 0. x and y must not alias.
void multiply_normalized(const Graph& g, std::span<const double> x,
                         std::span<double> y);

/// The top eigenvector of N for a connected graph: phi1(v) ~ sqrt(deg(v)),
/// normalized to unit 2-norm (eigenvalue exactly 1).
std::vector<double> stationary_direction(const Graph& g);

/// Removes the phi1 component: x <- x - <x, phi1> phi1.
void deflate(std::span<double> x, std::span<const double> phi1);

/// Euclidean helpers shared by the iterative solvers.
double dot(std::span<const double> a, std::span<const double> b);
double norm(std::span<const double> a);
/// Scales x to unit norm; returns the pre-scaling norm (0 if x == 0).
double normalize(std::span<double> x);

}  // namespace cobra::spectral
