// SPDX-License-Identifier: MIT
#include "spectral/jacobi.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cobra::spectral {

std::vector<double> jacobi_eigenvalues(std::vector<double> m, std::size_t n) {
  if (m.size() != n * n) {
    throw std::invalid_argument("jacobi: matrix must be n*n row-major");
  }
  const auto at = [&m, n](std::size_t r, std::size_t c) -> double& {
    return m[r * n + c];
  };
  const int max_sweeps = 64;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += at(p, q) * at(p, q);
    }
    if (off < 1e-24) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = at(p, q);
        if (std::fabs(apq) < 1e-18) continue;
        const double theta = (at(q, q) - at(p, p)) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::fabs(theta) + std::sqrt(theta * theta + 1.0)), theta);
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation G(p, q) on both sides.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = at(k, p);
          const double akq = at(k, q);
          at(k, p) = c * akp - s * akq;
          at(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = at(p, k);
          const double aqk = at(q, k);
          at(p, k) = c * apk - s * aqk;
          at(q, k) = s * apk + c * aqk;
        }
      }
    }
  }
  std::vector<double> eigenvalues(n);
  for (std::size_t i = 0; i < n; ++i) eigenvalues[i] = at(i, i);
  std::sort(eigenvalues.begin(), eigenvalues.end(), std::greater<>());
  return eigenvalues;
}

std::vector<double> dense_spectrum(const Graph& g) {
  const std::size_t n = g.num_vertices();
  if (n == 0 || n > 4096) {
    throw std::invalid_argument("dense_spectrum supports 1 <= n <= 4096");
  }
  std::vector<double> matrix(n * n, 0.0);
  for (Vertex v = 0; v < n; ++v) {
    const double dv = static_cast<double>(g.degree(v));
    for (const Vertex w : g.neighbors(v)) {
      const double dw = static_cast<double>(g.degree(w));
      matrix[static_cast<std::size_t>(v) * n + w] = 1.0 / std::sqrt(dv * dw);
    }
  }
  return jacobi_eigenvalues(std::move(matrix), n);
}

}  // namespace cobra::spectral
