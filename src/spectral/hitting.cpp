// SPDX-License-Identifier: MIT
#include "spectral/hitting.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "graph/analysis.hpp"

namespace cobra::spectral {

std::vector<double> solve_dense(std::vector<double> a, std::vector<double> b,
                                std::size_t n) {
  if (a.size() != n * n || b.size() != n) {
    throw std::invalid_argument("solve_dense: size mismatch");
  }
  const auto at = [&a, n](std::size_t r, std::size_t c) -> double& {
    return a[r * n + c];
  };
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(at(r, col)) > std::fabs(at(pivot, col))) pivot = r;
    }
    if (std::fabs(at(pivot, col)) < 1e-12) {
      throw std::invalid_argument("solve_dense: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(at(pivot, c), at(col, c));
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = at(r, col) * inv;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) at(r, c) -= factor * at(col, c);
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t r = n; r-- > 0;) {
    double acc = b[r];
    for (std::size_t c = r + 1; c < n; ++c) acc -= at(r, c) * x[c];
    x[r] = acc / at(r, r);
  }
  return x;
}

std::vector<double> expected_hitting_times(const Graph& g, Vertex target) {
  const std::size_t n = g.num_vertices();
  if (n == 0 || n > 2048) {
    throw std::invalid_argument("expected_hitting_times supports n <= 2048");
  }
  if (target >= n) throw std::invalid_argument("hitting target out of range");
  if (g.min_degree() == 0 || !is_connected(g)) {
    throw std::invalid_argument(
        "expected_hitting_times requires a connected graph with min degree "
        ">= 1");
  }
  // Unknowns: h(u) for u != target (m = n-1 of them).
  const std::size_t m = n - 1;
  const auto index_of = [target](Vertex v) -> std::size_t {
    return (v < target) ? v : v - 1;
  };
  std::vector<double> a(m * m, 0.0);
  std::vector<double> b(m, 1.0);
  for (Vertex u = 0; u < n; ++u) {
    if (u == target) continue;
    const std::size_t row = index_of(u);
    a[row * m + row] = 1.0;
    const double share = 1.0 / static_cast<double>(g.degree(u));
    for (const Vertex w : g.neighbors(u)) {
      if (w == target) continue;
      a[row * m + index_of(w)] -= share;
    }
  }
  const auto h = solve_dense(std::move(a), std::move(b), m);
  std::vector<double> result(n, 0.0);
  for (Vertex u = 0; u < n; ++u) {
    if (u != target) result[u] = h[index_of(u)];
  }
  return result;
}

double max_hitting_time(const Graph& g, Vertex target) {
  const auto h = expected_hitting_times(g, target);
  return *std::max_element(h.begin(), h.end());
}

MatthewsBounds matthews_cover_bounds(const Graph& g, std::size_t sample_cap) {
  const std::size_t n = g.num_vertices();
  if (n < 2) throw std::invalid_argument("matthews needs n >= 2");
  double h_min = std::numeric_limits<double>::infinity();
  double h_max = 0.0;
  const std::size_t stride = std::max<std::size_t>(1, n / sample_cap);
  for (Vertex v = 0; v < n; v += static_cast<Vertex>(stride)) {
    const auto h = expected_hitting_times(g, v);
    for (Vertex u = 0; u < n; ++u) {
      if (u == v) continue;
      h_min = std::min(h_min, h[u]);
      h_max = std::max(h_max, h[u]);
    }
  }
  double harmonic = 0.0;
  for (std::size_t i = 1; i < n; ++i) harmonic += 1.0 / static_cast<double>(i);
  return {h_min * harmonic, h_max * harmonic};
}

}  // namespace cobra::spectral
