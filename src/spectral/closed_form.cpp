// SPDX-License-Identifier: MIT
#include "spectral/closed_form.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cobra::spectral {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

double lambda_complete(std::size_t n) {
  if (n < 2) throw std::invalid_argument("lambda_complete requires n >= 2");
  return 1.0 / static_cast<double>(n - 1);
}

double lambda_cycle(std::size_t n) {
  if (n < 3) throw std::invalid_argument("lambda_cycle requires n >= 3");
  if (n % 2 == 0) return 1.0;
  // |cos(2 pi j / n)| is maximized at j = (n-1)/2: cos(pi - pi/n) = -cos(pi/n).
  return std::cos(std::numbers::pi / static_cast<double>(n));
}

double lambda_hypercube(std::size_t d) {
  if (d < 1) throw std::invalid_argument("lambda_hypercube requires d >= 1");
  return 1.0;
}

double lambda_torus(const std::vector<std::size_t>& dims) {
  if (dims.empty()) throw std::invalid_argument("lambda_torus requires dims");
  const double d = static_cast<double>(dims.size());
  // Enumerate all frequency tuples (j_1, ..., j_d), skip the all-zero one.
  std::vector<std::size_t> j(dims.size(), 0);
  double best = 0.0;
  while (true) {
    // advance mixed-radix counter
    std::size_t k = dims.size();
    while (k-- > 0) {
      if (++j[k] < dims[k]) break;
      j[k] = 0;
      if (k == 0) return best;
    }
    bool all_zero = true;
    double sum = 0.0;
    for (std::size_t i = 0; i < dims.size(); ++i) {
      if (j[i] != 0) all_zero = false;
      sum += std::cos(kTwoPi * static_cast<double>(j[i]) /
                      static_cast<double>(dims[i]));
    }
    if (all_zero) continue;
    best = std::max(best, std::fabs(sum / d));
  }
}

double lambda_circulant(std::size_t n,
                        const std::vector<std::uint32_t>& offsets) {
  if (n < 3 || offsets.empty()) {
    throw std::invalid_argument("lambda_circulant requires n >= 3, offsets");
  }
  double degree = 0.0;
  for (const std::uint32_t s : offsets) {
    degree += (2 * static_cast<std::size_t>(s) == n) ? 1.0 : 2.0;
  }
  double best = 0.0;
  for (std::size_t jj = 1; jj < n; ++jj) {
    double sum = 0.0;
    for (const std::uint32_t s : offsets) {
      const double angle =
          kTwoPi * static_cast<double>(jj) * static_cast<double>(s) /
          static_cast<double>(n);
      const bool matching = (2 * static_cast<std::size_t>(s) == n);
      sum += (matching ? 1.0 : 2.0) * std::cos(angle);
    }
    best = std::max(best, std::fabs(sum / degree));
  }
  return best;
}

double lambda_complete_bipartite() { return 1.0; }

double lambda_paley(std::size_t q) {
  if (q < 5) throw std::invalid_argument("lambda_paley requires q >= 5");
  return (std::sqrt(static_cast<double>(q)) + 1.0) /
         static_cast<double>(q - 1);
}

double lambda_kneser(std::size_t n_set, std::size_t k_subset) {
  if (k_subset == 0 || n_set < 2 * k_subset) {
    throw std::invalid_argument("lambda_kneser requires 1 <= k, n >= 2k");
  }
  const auto binom = [](std::size_t n, std::size_t k) -> double {
    if (k > n) return 0.0;
    double result = 1.0;
    for (std::size_t i = 0; i < k; ++i) {
      result = result * static_cast<double>(n - i) /
               static_cast<double>(i + 1);
    }
    return result;
  };
  const double degree = binom(n_set - k_subset, k_subset);
  double best = 0.0;
  for (std::size_t i = 1; i <= k_subset; ++i) {
    best = std::max(best, binom(n_set - k_subset - i, k_subset - i) / degree);
  }
  return best;
}

double lambda_petersen() { return 2.0 / 3.0; }

std::vector<double> spectrum_cycle(std::size_t n) {
  if (n < 3) throw std::invalid_argument("spectrum_cycle requires n >= 3");
  std::vector<double> values(n);
  for (std::size_t j = 0; j < n; ++j) {
    values[j] = std::cos(kTwoPi * static_cast<double>(j) /
                         static_cast<double>(n));
  }
  std::sort(values.begin(), values.end(), std::greater<>());
  return values;
}

std::vector<double> spectrum_complete(std::size_t n) {
  if (n < 2) throw std::invalid_argument("spectrum_complete requires n >= 2");
  std::vector<double> values(n, -1.0 / static_cast<double>(n - 1));
  values[0] = 1.0;
  return values;
}

std::vector<double> spectrum_hypercube(std::size_t d) {
  if (d < 1 || d > 24) {
    throw std::invalid_argument("spectrum_hypercube requires 1 <= d <= 24");
  }
  std::vector<double> values;
  values.reserve(std::size_t{1} << d);
  // Eigenvalue 1 - 2i/d has multiplicity binomial(d, i).
  double binom = 1.0;
  for (std::size_t i = 0; i <= d; ++i) {
    const double value =
        1.0 - 2.0 * static_cast<double>(i) / static_cast<double>(d);
    const auto count = static_cast<std::size_t>(binom + 0.5);
    values.insert(values.end(), count, value);
    binom = binom * static_cast<double>(d - i) / static_cast<double>(i + 1);
  }
  std::sort(values.begin(), values.end(), std::greater<>());
  return values;
}

}  // namespace cobra::spectral
