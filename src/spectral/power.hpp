// SPDX-License-Identifier: MIT
//
// Deflated power iteration for lambda = max_{i >= 2} |lambda_i| of the
// normalized adjacency. Simple and allocation-light; used as a cross-check
// for Lanczos and as a fallback when Lanczos hits its step cap.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "rand/rng.hpp"

namespace cobra::spectral {

struct PowerOptions {
  std::size_t max_iterations = 10'000;
  /// Stop when the eigen-residual ||N x - theta x|| drops below this.
  double tolerance = 1e-9;
  std::uint64_t seed = 0x5eedb01dULL;
};

struct PowerResult {
  /// Signed Rayleigh quotient of the converged direction (the dominant
  /// non-trivial eigenvalue; negative if |lambda_n| > lambda_2).
  double eigenvalue = 0.0;
  /// |eigenvalue| — the paper's lambda.
  double lambda_abs = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Runs power iteration on N with the trivial eigenvector deflated out.
/// Precondition: g is connected with at least 2 vertices.
PowerResult second_eigenvalue_power(const Graph& g, const PowerOptions& opts = {});

}  // namespace cobra::spectral
