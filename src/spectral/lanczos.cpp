// SPDX-License-Identifier: MIT
#include "spectral/lanczos.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rand/rng.hpp"
#include "spectral/matvec.hpp"

namespace cobra::spectral {

std::vector<double> tridiagonal_eigenvalues(std::vector<double> alpha,
                                            std::vector<double> beta) {
  // Implicit-shift QL for a symmetric tridiagonal matrix (EISPACK tql1
  // lineage). alpha becomes the eigenvalues.
  const std::size_t m = alpha.size();
  if (m == 0) return {};
  if (beta.size() + 1 != m) {
    throw std::invalid_argument("tridiagonal: beta must have size m-1");
  }
  std::vector<double> e(m, 0.0);
  std::copy(beta.begin(), beta.end(), e.begin());  // e[0..m-2], e[m-1] = 0

  for (std::size_t l = 0; l < m; ++l) {
    std::size_t iterations = 0;
    while (true) {
      // Find a small off-diagonal element to split the matrix.
      std::size_t split = l;
      while (split + 1 < m) {
        const double scale =
            std::fabs(alpha[split]) + std::fabs(alpha[split + 1]);
        if (std::fabs(e[split]) <= 1e-15 * scale) break;
        ++split;
      }
      if (split == l) break;
      if (++iterations > 50) {
        throw std::runtime_error("tridiagonal QL failed to converge");
      }
      // Form the implicit shift from the 2x2 block at l.
      double g = (alpha[l + 1] - alpha[l]) / (2.0 * e[l]);
      double r = std::hypot(g, 1.0);
      g = alpha[split] - alpha[l] + e[l] / (g + std::copysign(r, g));
      double s = 1.0;
      double c = 1.0;
      double p = 0.0;
      for (std::size_t i = split; i-- > l;) {
        double f = s * e[i];
        const double b = c * e[i];
        r = std::hypot(f, g);
        e[i + 1] = r;
        if (r == 0.0) {
          alpha[i + 1] -= p;
          e[split] = 0.0;
          break;
        }
        s = f / r;
        c = g / r;
        g = alpha[i + 1] - p;
        r = (alpha[i] - g) * s + 2.0 * c * b;
        p = s * r;
        alpha[i + 1] = g + p;
        g = c * r - b;
      }
      if (r == 0.0 && split > l + 1) continue;
      alpha[l] -= p;
      e[l] = g;
      e[split] = 0.0;
    }
  }
  std::sort(alpha.begin(), alpha.end());
  return alpha;
}

LanczosResult second_eigenvalue_lanczos(const Graph& g,
                                        const LanczosOptions& opts) {
  const std::size_t n = g.num_vertices();
  if (n < 2) throw std::invalid_argument("lanczos requires n >= 2");

  const std::vector<double> phi1 = stationary_direction(g);
  const std::size_t max_steps = std::min(opts.max_steps, n - 1);

  // Krylov basis kept explicitly for full reorthogonalization; at library
  // scales (n up to ~1e6, steps a few hundred) this is the robust choice.
  std::vector<std::vector<double>> basis;
  basis.reserve(max_steps);
  std::vector<double> alpha;
  std::vector<double> beta;

  Rng rng(opts.seed);
  std::vector<double> q(n);
  for (double& value : q) value = rng.next_double() - 0.5;
  deflate(q, phi1);
  if (normalize(q) == 0.0) {
    q.assign(n, 0.0);
    q[0] = 1.0;
    deflate(q, phi1);
    normalize(q);
  }

  LanczosResult result;
  std::vector<double> w(n);
  double prev_hi = 2.0;
  double prev_lo = -2.0;
  for (std::size_t step = 0; step < max_steps; ++step) {
    basis.push_back(q);
    multiply_normalized(g, q, w);
    deflate(w, phi1);
    const double a = dot(w, q);
    alpha.push_back(a);
    // w <- w - a q - beta_prev q_prev, then full reorthogonalization.
    for (std::size_t i = 0; i < n; ++i) w[i] -= a * q[i];
    if (!beta.empty()) {
      const auto& prev = basis[basis.size() - 2];
      const double b = beta.back();
      for (std::size_t i = 0; i < n; ++i) w[i] -= b * prev[i];
    }
    for (const auto& vec : basis) {
      const double coeff = dot(w, vec);
      if (std::fabs(coeff) > 0) {
        for (std::size_t i = 0; i < n; ++i) w[i] -= coeff * vec[i];
      }
    }
    const double b_next = norm(w);
    result.steps = step + 1;

    // Check extreme Ritz values every few steps (and at the end).
    const bool breakdown = b_next < 1e-13;
    if (breakdown || step + 1 == max_steps || (step % 8 == 7)) {
      const auto ritz = tridiagonal_eigenvalues(
          alpha, std::vector<double>(beta.begin(), beta.end()));
      const double lo = ritz.front();
      const double hi = ritz.back();
      result.lambda2 = hi;
      result.lambda_min = lo;
      result.lambda_abs = std::max(std::fabs(hi), std::fabs(lo));
      const bool stable = std::fabs(hi - prev_hi) < opts.tolerance &&
                          std::fabs(lo - prev_lo) < opts.tolerance;
      prev_hi = hi;
      prev_lo = lo;
      if (breakdown) {
        // Exact invariant subspace: the Ritz values are exact eigenvalues.
        result.converged = true;
        return result;
      }
      if (stable) {
        result.converged = true;
        return result;
      }
    }
    beta.push_back(b_next);
    q = w;
    const double scale = 1.0 / b_next;
    for (double& value : q) value *= scale;
  }
  return result;
}

}  // namespace cobra::spectral
