// SPDX-License-Identifier: MIT
//
// Random-walk mixing estimates derived from the spectral report. The
// paper's T = log(n)/(1-lambda)^3 envelope contains the relaxation time
// 1/(1-lambda) as its driving term; these helpers make the standard
// quantities available to experiments and examples:
//   relaxation time  t_rel = 1 / (1 - lambda)
//   mixing time      t_mix(eps) <= t_rel * ln(n / eps)   (reversible chains)
// plus a direct simulation of the walk's distance to stationarity for
// cross-checking the bound on small graphs.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"

namespace cobra::spectral {

struct MixingEstimate {
  double lambda = 0.0;
  double relaxation_time = 0.0;          ///< 1/(1 - lambda)
  double mixing_time_bound = 0.0;        ///< t_rel * ln(n/eps)
  double paper_T = 0.0;                  ///< log(n)/(1-lambda)^3 (Theorem 1/2)
};

/// Computes the estimates from a spectral report of g (eps in (0,1)).
MixingEstimate mixing_estimate(const Graph& g, double eps = 0.25);

/// Exact total-variation distance of the t-step walk from stationarity,
/// maximized over start vertices, by dense matrix powering. O(t n^3 / ...)
/// via repeated vector multiplications: O(t * n * m). For tests; n <= 2048.
double walk_tv_distance(const Graph& g, std::size_t t);

}  // namespace cobra::spectral
