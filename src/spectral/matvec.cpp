// SPDX-License-Identifier: MIT
#include "spectral/matvec.hpp"

#include <cassert>
#include <cmath>

namespace cobra::spectral {

void multiply_normalized(const Graph& g, std::span<const double> x,
                         std::span<double> y) {
  const std::size_t n = g.num_vertices();
  assert(x.size() == n && y.size() == n);
  if (g.is_regular() && g.regularity() > 0) {
    const double inv_r = 1.0 / g.regularity();
    for (Vertex v = 0; v < n; ++v) {
      double acc = 0.0;
      for (const Vertex w : g.neighbors(v)) acc += x[w];
      y[v] = acc * inv_r;
    }
    return;
  }
  for (Vertex v = 0; v < n; ++v) {
    const std::size_t dv = g.degree(v);
    if (dv == 0) {
      y[v] = 0.0;
      continue;
    }
    double acc = 0.0;
    for (const Vertex w : g.neighbors(v)) {
      const std::size_t dw = g.degree(w);
      acc += x[w] / std::sqrt(static_cast<double>(dw));
    }
    y[v] = acc / std::sqrt(static_cast<double>(dv));
  }
}

std::vector<double> stationary_direction(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<double> phi(n);
  double total = 0.0;
  for (Vertex v = 0; v < n; ++v) {
    phi[v] = std::sqrt(static_cast<double>(g.degree(v)));
    total += phi[v] * phi[v];
  }
  const double inv = total > 0 ? 1.0 / std::sqrt(total) : 0.0;
  for (double& value : phi) value *= inv;
  return phi;
}

void deflate(std::span<double> x, std::span<const double> phi1) {
  const double coeff = dot(x, phi1);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] -= coeff * phi1[i];
}

double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double normalize(std::span<double> x) {
  const double len = norm(x);
  if (len > 0) {
    const double inv = 1.0 / len;
    for (double& value : x) value *= inv;
  }
  return len;
}

}  // namespace cobra::spectral
