// SPDX-License-Identifier: MIT
//
// Dense cyclic Jacobi eigensolver for the normalized adjacency. O(n^3) and
// O(n^2) memory — a validation oracle for the iterative solvers on small
// graphs (tests use n <= 512), not a production path.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace cobra::spectral {

/// All eigenvalues of the dense normalized adjacency of g, descending.
/// Throws std::invalid_argument for n == 0 or n > 4096 (memory guard).
std::vector<double> dense_spectrum(const Graph& g);

/// Eigenvalues of an arbitrary symmetric dense matrix (row-major, n*n),
/// descending. Exposed for testing the rotation kernel in isolation.
std::vector<double> jacobi_eigenvalues(std::vector<double> matrix,
                                       std::size_t n);

}  // namespace cobra::spectral
