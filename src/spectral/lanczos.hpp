// SPDX-License-Identifier: MIT
//
// Lanczos iteration (with full reorthogonalization) on the normalized
// adjacency N, with the trivial eigenvector projected out. This is the
// library's primary spectral solver: it resolves both edges of the
// spectrum (lambda_2 and lambda_n) simultaneously, which the power method
// cannot do when lambda_2 is close to |lambda_n|.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace cobra::spectral {

struct LanczosOptions {
  /// Krylov subspace cap. The solver stops earlier on breakdown (exact
  /// invariant subspace) or when extreme Ritz values stabilize.
  std::size_t max_steps = 300;
  /// Relative stabilization tolerance on the extreme Ritz values.
  double tolerance = 1e-10;
  std::uint64_t seed = 0xa5eedULL;
};

struct LanczosResult {
  /// Largest non-trivial eigenvalue (signed), i.e. lambda_2 of N.
  double lambda2 = 0.0;
  /// Smallest eigenvalue, i.e. lambda_n of N (>= -1; == -1 iff bipartite).
  double lambda_min = 0.0;
  /// max(|lambda2|, |lambda_min|) — the paper's lambda.
  double lambda_abs = 0.0;
  std::size_t steps = 0;
  bool converged = false;
};

/// Precondition: g connected, n >= 2.
LanczosResult second_eigenvalue_lanczos(const Graph& g,
                                        const LanczosOptions& opts = {});

/// Eigenvalues of the symmetric tridiagonal matrix with diagonal `alpha`
/// (size m) and off-diagonal `beta` (size m-1), in ascending order.
/// Implicit-shift QL; exposed for direct testing.
std::vector<double> tridiagonal_eigenvalues(std::vector<double> alpha,
                                            std::vector<double> beta);

}  // namespace cobra::spectral
