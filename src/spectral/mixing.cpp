// SPDX-License-Identifier: MIT
#include "spectral/mixing.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "spectral/gap.hpp"

namespace cobra::spectral {

MixingEstimate mixing_estimate(const Graph& g, double eps) {
  if (eps <= 0.0 || eps >= 1.0) {
    throw std::invalid_argument("mixing_estimate requires eps in (0,1)");
  }
  const auto report = spectral_report(g);
  MixingEstimate estimate;
  estimate.lambda = report.lambda;
  const double gap = std::max(report.gap, 1e-300);
  estimate.relaxation_time = 1.0 / gap;
  const double n = static_cast<double>(g.num_vertices());
  estimate.mixing_time_bound = estimate.relaxation_time * std::log(n / eps);
  estimate.paper_T = std::log(n) / (gap * gap * gap);
  return estimate;
}

double walk_tv_distance(const Graph& g, std::size_t t) {
  const std::size_t n = g.num_vertices();
  if (n == 0 || n > 2048) {
    throw std::invalid_argument("walk_tv_distance supports 1 <= n <= 2048");
  }
  if (g.min_degree() == 0) {
    throw std::invalid_argument("walk_tv_distance requires min degree >= 1");
  }
  // Stationary distribution pi(v) = d(v) / 2m.
  const double two_m = 2.0 * static_cast<double>(g.num_edges());
  std::vector<double> pi(n);
  for (Vertex v = 0; v < n; ++v) {
    pi[v] = static_cast<double>(g.degree(v)) / two_m;
  }
  double worst = 0.0;
  std::vector<double> dist(n);
  std::vector<double> next(n);
  for (Vertex start = 0; start < n; ++start) {
    std::fill(dist.begin(), dist.end(), 0.0);
    dist[start] = 1.0;
    for (std::size_t step = 0; step < t; ++step) {
      std::fill(next.begin(), next.end(), 0.0);
      for (Vertex v = 0; v < n; ++v) {
        if (dist[v] == 0.0) continue;
        const double share = dist[v] / static_cast<double>(g.degree(v));
        for (const Vertex w : g.neighbors(v)) next[w] += share;
      }
      dist.swap(next);
    }
    double tv = 0.0;
    for (Vertex v = 0; v < n; ++v) tv += std::fabs(dist[v] - pi[v]);
    worst = std::max(worst, tv / 2.0);
  }
  return worst;
}

}  // namespace cobra::spectral
