// SPDX-License-Identifier: MIT
//
// One-call spectral summary used by experiments: the paper's lambda, the
// gap 1 - lambda, and the signed spectrum edges, computed by the most
// appropriate solver for the instance size.
#pragma once

#include <string>

#include "graph/graph.hpp"

namespace cobra::spectral {

struct SpectralReport {
  double lambda2 = 0.0;      ///< largest non-trivial eigenvalue (signed)
  double lambda_min = 0.0;   ///< smallest eigenvalue (signed)
  double lambda = 0.0;       ///< max(|lambda2|, |lambda_min|) — paper's lambda
  double gap = 0.0;          ///< 1 - lambda
  std::string method;        ///< "jacobi" | "lanczos"
  bool converged = false;
};

/// Computes the report. Dense Jacobi for n <= 256 (exact to rounding),
/// Lanczos above. Precondition: g connected, n >= 2.
SpectralReport spectral_report(const Graph& g);

}  // namespace cobra::spectral
