// SPDX-License-Identifier: MIT
#include "spectral/power.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "spectral/matvec.hpp"

namespace cobra::spectral {

PowerResult second_eigenvalue_power(const Graph& g, const PowerOptions& opts) {
  const std::size_t n = g.num_vertices();
  if (n < 2) throw std::invalid_argument("power iteration requires n >= 2");

  const std::vector<double> phi1 = stationary_direction(g);
  std::vector<double> x(n);
  Rng rng(opts.seed);
  for (double& value : x) value = rng.next_double() - 0.5;
  deflate(x, phi1);
  if (normalize(x) == 0.0) {
    // Degenerate random start (essentially impossible); fall back to a
    // deterministic perturbation.
    x.assign(n, 0.0);
    x[0] = 1.0;
    deflate(x, phi1);
    normalize(x);
  }

  std::vector<double> y(n);
  PowerResult result;
  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    multiply_normalized(g, x, y);
    deflate(y, phi1);  // counter numerical drift back toward phi1
    const double theta = dot(x, y);
    // Residual of (theta, x) as an eigenpair: ||y - theta x||.
    double residual_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = y[i] - theta * x[i];
      residual_sq += r * r;
    }
    result.eigenvalue = theta;
    result.lambda_abs = std::fabs(theta);
    result.iterations = it;
    if (std::sqrt(residual_sq) < opts.tolerance) {
      result.converged = true;
      break;
    }
    if (normalize(y) == 0.0) {
      // x was in the kernel of N; lambda estimate is 0 and exact.
      result.eigenvalue = 0.0;
      result.lambda_abs = 0.0;
      result.converged = true;
      break;
    }
    x.swap(y);
  }
  return result;
}

}  // namespace cobra::spectral
