// SPDX-License-Identifier: MIT
#include "dist/lease.hpp"

namespace cobra::dist {

LeaseTable::LeaseTable(std::vector<std::vector<std::size_t>> shards,
                       std::chrono::milliseconds lease_timeout)
    : shards_(std::move(shards)),
      lease_timeout_(lease_timeout),
      entries_(shards_.size()) {}

std::optional<std::size_t> LeaseTable::acquire(std::uint64_t worker) {
  std::unique_lock lock(mutex_);
  while (true) {
    if (aborted_ || done_ == entries_.size()) return std::nullopt;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].state != State::kPending) continue;
      entries_[i].state = State::kLeased;
      entries_[i].owner = worker;
      entries_[i].deadline = Clock::now() + lease_timeout_;
      return i;
    }
    work_ready_.wait(lock);
  }
}

void LeaseTable::renew(std::size_t shard, std::uint64_t worker) {
  std::lock_guard lock(mutex_);
  Entry& entry = entries_[shard];
  if (entry.state == State::kLeased && entry.owner == worker) {
    entry.deadline = Clock::now() + lease_timeout_;
  }
}

void LeaseTable::complete(std::size_t shard) {
  std::lock_guard lock(mutex_);
  Entry& entry = entries_[shard];
  if (entry.state == State::kDone) return;
  entry.state = State::kDone;
  ++done_;
  // Completion can be the event every acquirer is waiting for (all done →
  // they must wake to receive nullopt and send SHUTDOWN).
  work_ready_.notify_all();
}

std::size_t LeaseTable::release_worker(std::uint64_t worker) {
  std::lock_guard lock(mutex_);
  std::size_t requeued = 0;
  for (Entry& entry : entries_) {
    if (entry.state == State::kLeased && entry.owner == worker) {
      entry.state = State::kPending;
      ++requeued;
    }
  }
  if (requeued > 0) {
    requeues_ += requeued;
    work_ready_.notify_all();
  }
  return requeued;
}

std::size_t LeaseTable::requeue_expired() {
  std::lock_guard lock(mutex_);
  const auto now = Clock::now();
  std::size_t requeued = 0;
  for (Entry& entry : entries_) {
    if (entry.state == State::kLeased && entry.deadline <= now) {
      entry.state = State::kPending;
      ++requeued;
    }
  }
  if (requeued > 0) {
    requeues_ += requeued;
    work_ready_.notify_all();
  }
  return requeued;
}

void LeaseTable::abort() {
  std::lock_guard lock(mutex_);
  aborted_ = true;
  work_ready_.notify_all();
}

bool LeaseTable::all_done() const {
  std::lock_guard lock(mutex_);
  return done_ == entries_.size();
}

bool LeaseTable::aborted() const {
  std::lock_guard lock(mutex_);
  return aborted_;
}

LeaseTable::Stats LeaseTable::stats() const {
  std::lock_guard lock(mutex_);
  Stats stats;
  stats.shards_total = entries_.size();
  stats.done = done_;
  stats.requeues = requeues_;
  for (const Entry& entry : entries_) {
    if (entry.state == State::kPending) ++stats.pending;
    if (entry.state == State::kLeased) ++stats.leased;
  }
  return stats;
}

}  // namespace cobra::dist
