// SPDX-License-Identifier: MIT
//
// Wire protocol of the distributed campaign fabric: length-prefixed binary
// frames over TCP (localhost first; nothing here assumes one machine).
//
// Frame layout (all integers little-endian):
//   u32 payload-length | u8 frame-type | payload bytes
//
// Conversation:
//   worker  -> HELLO        protocol + journal-format versions, build info
//   coord   -> WELCOME      versions, build info, plan fingerprint, the
//                           rendered spec text (the worker re-plans from it
//                           and cross-checks the fingerprint — a stale
//                           worker binary whose planner diverged fails
//                           loudly here), worker id
//           |  REJECT       reason (version mismatch) — connection ends
//   worker  -> LEASE_REQUEST
//   coord   -> LEASE_GRANT  shard id + the job indices still pending in it
//           |  SHUTDOWN     campaign complete — worker exits
//   worker  -> JOB_RESULT   shard id, job index, serialized JobResult
//                           payload (the journal's own %.17g round-trip
//                           format, so a remotely computed result merges
//                           byte-identically to a local one)
//   worker  -> SHARD_DONE   shard id — every job of the lease was streamed
//   either  -> ERROR        fatal condition, human-readable reason
//
// Graph shipping (protocol v2): a worker whose plan references
// family=file graphs it does not have locally fetches them from the
// coordinator right after the handshake, before its lease loop:
//   worker  -> GRAPH_REQUEST  relative path, byte offset, max bytes
//   coord   -> GRAPH_DATA     total file size + the requested byte range
//           |  ERROR          unknown path (only paths named by the plan's
//                             own [graph] file= params are served — the
//                             coordinator is not a general file server)
// Ranges respect kMaxFramePayload, so arbitrarily large .cgr instances
// ship in bounded frames; the worker writes them to the same relative
// path and re-resolves it, keeping graph seeds and the plan fingerprint
// unchanged.
//
// Any frame from a worker renews its lease; a closed connection or an
// expired lease requeues the shard (see lease.hpp), and re-delivered
// results are dropped by job index at the journal merge.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cobra::dist {

/// Bumped on any incompatible change to framing or message layout; the
/// handshake rejects a mismatch outright. v2 added the GRAPH_REQUEST /
/// GRAPH_DATA graph-shipping exchange.
inline constexpr std::uint32_t kProtocolVersion = 2;

/// Hard ceiling on one frame's payload — a corrupt length prefix must not
/// become a multi-gigabyte allocation.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/// All fabric transport/codec errors (socket failures, malformed frames,
/// handshake rejections) throw this.
struct ProtocolError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class FrameType : std::uint8_t {
  kHello = 1,
  kWelcome = 2,
  kReject = 3,
  kLeaseRequest = 4,
  kLeaseGrant = 5,
  kShutdown = 6,
  kJobResult = 7,
  kShardDone = 8,
  kError = 9,
  kGraphRequest = 10,
  kGraphData = 11,
};

const char* frame_type_name(FrameType type);

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Append-only payload builder.
class WireWriter {
 public:
  void u8(std::uint8_t value);
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  /// u32 length prefix + raw bytes.
  void str(std::string_view value);

  const std::string& data() const noexcept { return data_; }
  std::string take() noexcept { return std::move(data_); }

 private:
  std::string data_;
};

/// Bounds-checked payload cursor; underflow throws ProtocolError (a
/// malformed frame must never read past its buffer).
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::string str();

  bool done() const noexcept { return pos_ == data_.size(); }

 private:
  const unsigned char* need(std::size_t bytes);

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// RAII TCP stream socket with framed send/recv. Sends are whole-frame and
/// use MSG_NOSIGNAL (a peer death surfaces as ProtocolError, not SIGPIPE).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }

  /// Connects to host:port (numeric IPv4 host, "127.0.0.1" for local
  /// fleets); throws ProtocolError on failure.
  static Socket connect_to(const std::string& host, std::uint16_t port);

  /// Writes one complete frame; throws ProtocolError on any short write.
  void send_frame(FrameType type, std::string_view payload);

  /// Reads one frame. Returns false on a clean EOF at a frame boundary
  /// (the peer closed); throws on a torn frame, oversized length, or
  /// socket error — a dead worker mid-frame is an error the caller turns
  /// into a lease requeue.
  bool recv_frame(Frame& frame);

  /// Shuts down both directions, unblocking a peer (or own thread) stuck
  /// in recv. Idempotent, never throws.
  void shutdown_both() noexcept;

  void close() noexcept;

 private:
  void send_all(const void* data, std::size_t bytes);
  bool recv_all(void* data, std::size_t bytes, bool eof_ok);

  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1 (port 0 = kernel-assigned; port()
/// reports the effective one so scripts can follow a --port-file).
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  static Listener bind_local(std::uint16_t port);

  std::uint16_t port() const noexcept { return port_; }
  bool valid() const noexcept { return fd_ >= 0; }

  /// Blocks for the next connection; returns an invalid Socket once the
  /// listener has been closed (the accept loop's exit signal).
  Socket accept_connection();

  /// Unblocks accept_connection and releases the port. Safe to call from
  /// another thread; idempotent.
  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

// ---- message codecs (payloads of the frames above) ----

struct HelloMsg {
  std::uint32_t protocol = kProtocolVersion;
  std::uint32_t journal_format = 0;
  std::string build_info;
};

struct WelcomeMsg {
  std::uint32_t protocol = kProtocolVersion;
  std::uint32_t journal_format = 0;
  std::string build_info;
  std::uint64_t fingerprint = 0;
  std::uint64_t worker_id = 0;
  std::string spec_text;
};

struct LeaseGrantMsg {
  std::uint64_t shard = 0;
  std::vector<std::uint64_t> jobs;
};

struct JobResultMsg {
  std::uint64_t shard = 0;
  std::uint64_t job = 0;
  std::string payload;  ///< serialize_job_result() bytes
};

/// One byte range of a plan-referenced graph file. `max_bytes` caps the
/// reply chunk (the coordinator may return less at EOF, never more).
struct GraphRequestMsg {
  std::string path;  ///< as written in the plan's file= param
  std::uint64_t offset = 0;
  std::uint32_t max_bytes = 0;
};

struct GraphDataMsg {
  std::uint64_t file_size = 0;  ///< total bytes, so the worker can loop
  std::string bytes;            ///< the range [offset, offset + len)
};

std::string encode_hello(const HelloMsg& msg);
HelloMsg decode_hello(std::string_view payload);
std::string encode_welcome(const WelcomeMsg& msg);
WelcomeMsg decode_welcome(std::string_view payload);
std::string encode_lease_grant(const LeaseGrantMsg& msg);
LeaseGrantMsg decode_lease_grant(std::string_view payload);
std::string encode_job_result(const JobResultMsg& msg);
JobResultMsg decode_job_result(std::string_view payload);
std::string encode_graph_request(const GraphRequestMsg& msg);
GraphRequestMsg decode_graph_request(std::string_view payload);
std::string encode_graph_data(const GraphDataMsg& msg);
GraphDataMsg decode_graph_data(std::string_view payload);
/// kReject / kError payloads are bare reason strings (not u32-prefixed).

}  // namespace cobra::dist
