// SPDX-License-Identifier: MIT
#include "dist/coordinator.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <ostream>
#include <set>
#include <thread>
#include <vector>

#include "dist/lease.hpp"
#include "dist/protocol.hpp"
#include "obs/progress.hpp"
#include "scenario/registry.hpp"
#include "scenario/sink.hpp"
#include "util/build_info.hpp"
#include "util/stopwatch.hpp"

namespace cobra::dist {

using scenario::CampaignPlan;
using scenario::JobResult;
using scenario::Journal;
using scenario::SpecError;

struct Coordinator::Impl {
  CampaignPlan plan;
  std::string spec_text;
  CoordinatorOptions options;
  std::string stem;

  Listener listener;
  std::unique_ptr<Journal> journal;
  std::unique_ptr<LeaseTable> lease;

  // ---- shared merge state (mutex-guarded) ----
  std::mutex mutex;
  std::condition_variable done_cv;
  std::vector<std::optional<JobResult>> results;
  std::size_t total = 0;
  std::size_t resumed = 0;
  std::size_t merged = 0;
  std::size_t duplicates = 0;
  std::size_t workers_served = 0;
  std::size_t workers_connected = 0;
  std::uint64_t next_worker_id = 0;
  bool errored = false;
  std::string first_error;
  bool stopping = false;
  std::vector<int> active_fds;  ///< live handler sockets, for broadcast

  /// Graph files the plan's own [graph] file= params reference — the only
  /// paths GRAPH_REQUEST will serve (the coordinator is not a general
  /// file server). Immutable after construction.
  std::set<std::string> graph_files;

  // ---- threads ----
  std::thread accept_thread;
  std::vector<std::thread> handlers;
  bool accepting = false;

  explicit Impl(CampaignPlan plan_in, std::string spec_text_in,
                CoordinatorOptions options_in)
      : plan(std::move(plan_in)),
        spec_text(std::move(spec_text_in)),
        options(std::move(options_in)) {
    stem = !options.output.empty() ? options.output : plan.output;
    for (const scenario::JobSpec& job : plan.jobs) {
      const std::string* family = scenario::find_param(job.graph, "family");
      const std::string* file = scenario::find_param(job.graph, "file");
      if (family != nullptr && *family == "file" && file != nullptr) {
        graph_files.insert(*file);
      }
    }
    total = plan.jobs.size();
    results.assign(total, std::nullopt);
    if (!stem.empty()) {
      journal = std::make_unique<Journal>(stem + ".journal", plan,
                                          options.resume);
      for (const auto& [index, restored] : journal->restored()) {
        results[index] = restored;
      }
      resumed = journal->restored().size();
      // Provenance stamp: which binary served this campaign. Cross-machine
      // runs are auditable from the journal alone.
      journal->note("coordinator build " + build_info_string());
    }

    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < total; ++i) {
      if (!results[i].has_value()) pending.push_back(i);
    }
    std::size_t shard_size = options.shard_size;
    if (shard_size == 0) {
      shard_size = std::clamp<std::size_t>(pending.size() / 8, 1, 64);
    }
    std::vector<std::vector<std::size_t>> shards;
    for (std::size_t at = 0; at < pending.size(); at += shard_size) {
      const std::size_t end = std::min(at + shard_size, pending.size());
      shards.emplace_back(pending.begin() + at, pending.begin() + end);
    }
    if (journal && !shards.empty()) {
      journal->note("dist shards=" + std::to_string(shards.size()) +
                    " shard_size=" + std::to_string(shard_size));
    }
    lease = std::make_unique<LeaseTable>(
        std::move(shards),
        std::chrono::milliseconds(static_cast<long long>(
            std::max(0.05, options.lease_timeout_seconds) * 1000.0)));

    listener = Listener::bind_local(options.port);
  }

  void log_line(const std::string& text) {
    if (options.log != nullptr) {
      std::lock_guard lock(mutex);
      *options.log << "[dist] " << text << "\n";
    }
  }

  bool campaign_done() const {  // callers hold mutex
    return merged + resumed == total;
  }

  /// One worker connection, handshake to disconnect. Any transport error
  /// is treated as a worker death: requeue its leases and move on.
  void handle_connection(Socket socket) {
    std::uint64_t id = 0;
    bool counted = false;
    {
      std::lock_guard lock(mutex);
      active_fds.push_back(socket.fd());
    }
    try {
      id = handshake(socket, counted);
      if (id != 0) serve_worker(socket, id);
    } catch (const ProtocolError&) {
      // Connection died (kill -9 closes the socket; a torn frame reads the
      // same) — the lease release below is the repair path.
    }
    const std::size_t requeued = id != 0 ? lease->release_worker(id) : 0;
    {
      std::lock_guard lock(mutex);
      active_fds.erase(
          std::find(active_fds.begin(), active_fds.end(), socket.fd()));
      if (counted) --workers_connected;
    }
    if (requeued > 0) {
      log_line("worker " + std::to_string(id) + " lost; requeued " +
               std::to_string(requeued) + " shard(s)");
    } else if (id != 0) {
      log_line("worker " + std::to_string(id) + " disconnected");
    }
  }

  /// Returns the worker id, or 0 if the worker was rejected.
  std::uint64_t handshake(Socket& socket, bool& counted) {
    Frame frame;
    if (!socket.recv_frame(frame)) return 0;
    if (frame.type != FrameType::kHello) {
      socket.send_frame(FrameType::kReject, "expected HELLO");
      return 0;
    }
    const HelloMsg hello = decode_hello(frame.payload);
    if (hello.protocol != kProtocolVersion ||
        hello.journal_format != scenario::kJournalFormatVersion) {
      socket.send_frame(
          FrameType::kReject,
          "version mismatch: coordinator protocol v" +
              std::to_string(kProtocolVersion) + " journal v" +
              std::to_string(scenario::kJournalFormatVersion) +
              ", worker protocol v" + std::to_string(hello.protocol) +
              " journal v" + std::to_string(hello.journal_format) +
              " — rebuild the stale side");
      return 0;
    }
    std::uint64_t id = 0;
    {
      std::lock_guard lock(mutex);
      id = ++next_worker_id;
      ++workers_served;
      ++workers_connected;
      counted = true;
      if (journal) {
        journal->note("worker " + std::to_string(id) + " connect " +
                      hello.build_info);
      }
    }
    WelcomeMsg welcome;
    welcome.journal_format = scenario::kJournalFormatVersion;
    welcome.build_info = build_info_string();
    welcome.fingerprint = plan.fingerprint;
    welcome.worker_id = id;
    welcome.spec_text = spec_text;
    socket.send_frame(FrameType::kWelcome, encode_welcome(welcome));
    log_line("worker " + std::to_string(id) + " joined (" +
             hello.build_info + ")");
    return id;
  }

  void serve_worker(Socket& socket, std::uint64_t id) {
    Frame frame;
    while (socket.recv_frame(frame)) {
      switch (frame.type) {
        case FrameType::kLeaseRequest: {
          if (!grant_lease(socket, id)) return;  // SHUTDOWN sent
          break;
        }
        case FrameType::kJobResult: {
          merge_result(decode_job_result(frame.payload), id);
          break;
        }
        case FrameType::kShardDone: {
          WireReader reader(frame.payload);
          const std::uint64_t shard = reader.u64();
          if (shard < lease->stats().shards_total) {
            lease->complete(static_cast<std::size_t>(shard));
          }
          break;
        }
        case FrameType::kGraphRequest: {
          serve_graph_range(socket, decode_graph_request(frame.payload));
          break;
        }
        case FrameType::kError: {
          fail("worker " + std::to_string(id) + ": " + frame.payload);
          return;
        }
        default:
          throw ProtocolError(std::string("unexpected frame ") +
                              frame_type_name(frame.type));
      }
    }
  }

  /// Streams one byte range of a plan-referenced graph file back to the
  /// worker. Paths outside the plan's allow-set (and unreadable files)
  /// terminate the connection — a correct worker only asks for what the
  /// shipped spec names.
  void serve_graph_range(Socket& socket, const GraphRequestMsg& request) {
    if (graph_files.find(request.path) == graph_files.end()) {
      const std::string reason =
          "graph file '" + request.path + "' is not referenced by the plan";
      socket.send_frame(FrameType::kError, reason);
      throw ProtocolError(reason);
    }
    std::ifstream in(request.path, std::ios::binary);
    if (!in) {
      const std::string reason =
          "cannot open graph file '" + request.path + "'";
      socket.send_frame(FrameType::kError, reason);
      throw ProtocolError(reason);
    }
    in.seekg(0, std::ios::end);
    const auto file_size = static_cast<std::uint64_t>(in.tellg());
    GraphDataMsg reply;
    reply.file_size = file_size;
    // Leave frame headroom for the codec's own fields.
    const std::uint64_t cap = std::min<std::uint64_t>(
        request.max_bytes, kMaxFramePayload - 64);
    if (request.offset < file_size && cap > 0) {
      const std::uint64_t len =
          std::min<std::uint64_t>(cap, file_size - request.offset);
      reply.bytes.resize(len);
      in.seekg(static_cast<std::streamoff>(request.offset));
      if (!in.read(reply.bytes.data(),
                   static_cast<std::streamsize>(len))) {
        const std::string reason =
            "short read from graph file '" + request.path + "'";
        socket.send_frame(FrameType::kError, reason);
        throw ProtocolError(reason);
      }
    }
    socket.send_frame(FrameType::kGraphData, encode_graph_data(reply));
  }

  /// Leases the next shard to the worker; filters out jobs that were
  /// merged since the shard was built (a requeued shard may be partially
  /// done — no point re-running frames the journal already holds). Returns
  /// false once SHUTDOWN was sent.
  bool grant_lease(Socket& socket, std::uint64_t id) {
    while (true) {
      const std::optional<std::size_t> shard = lease->acquire(id);
      if (!shard.has_value()) {
        // All done, or aborted. On a job-error abort the waiting workers
        // get the reason, not a success-shaped SHUTDOWN.
        std::string error;
        {
          std::lock_guard lock(mutex);
          if (errored) error = first_error;
        }
        if (!error.empty()) {
          socket.send_frame(FrameType::kError, error);
        } else {
          socket.send_frame(FrameType::kShutdown, "");
        }
        return false;
      }
      LeaseGrantMsg grant;
      grant.shard = *shard;
      {
        std::lock_guard lock(mutex);
        for (const std::size_t job : lease->jobs(*shard)) {
          if (!results[job].has_value()) grant.jobs.push_back(job);
        }
      }
      if (grant.jobs.empty()) {
        lease->complete(*shard);
        continue;
      }
      socket.send_frame(FrameType::kLeaseGrant, encode_lease_grant(grant));
      log_line("shard " + std::to_string(*shard) + " (" +
               std::to_string(grant.jobs.size()) + " job(s)) -> worker " +
               std::to_string(id));
      return true;
    }
  }

  void merge_result(const JobResultMsg& msg, std::uint64_t id) {
    if (msg.job >= total || msg.shard >= lease->stats().shards_total) {
      throw ProtocolError("result for out-of-range job " +
                          std::to_string(msg.job) + " / shard " +
                          std::to_string(msg.shard));
    }
    JobResult parsed;
    if (!scenario::parse_job_result(msg.payload, parsed)) {
      fail("worker " + std::to_string(id) + ": unparseable result frame " +
           "for job " + std::to_string(msg.job));
      return;
    }
    lease->renew(static_cast<std::size_t>(msg.shard), id);
    std::lock_guard lock(mutex);
    const auto index = static_cast<std::size_t>(msg.job);
    // The idempotency point: first frame per job index wins, every later
    // copy (requeued shard, straggler racing its replacement) is dropped —
    // results are deterministic, so copies are identical anyway.
    const bool fresh =
        journal ? journal->merge(index, parsed) : !results[index].has_value();
    if (!fresh) {
      ++duplicates;
      return;
    }
    results[index] = std::move(parsed);
    ++merged;
    if (campaign_done()) done_cv.notify_all();
  }

  void fail(const std::string& message) {
    {
      std::lock_guard lock(mutex);
      if (!errored) {
        errored = true;
        first_error = message;
      }
    }
    lease->abort();
    done_cv.notify_all();
  }

  void broadcast_shutdown() {
    std::lock_guard lock(mutex);
    for (const int fd : active_fds) ::shutdown(fd, SHUT_RDWR);
  }

  void join_threads() {
    listener.close();
    if (accept_thread.joinable()) accept_thread.join();
    // A handler can be parked in lease->acquire() even though every job is
    // merged (its peer died after streaming results but before SHARD_DONE,
    // leaving the shard leased) — abort the table so every acquire returns
    // before we join.
    lease->abort();
    // Graceful drain: a handler exits right after answering its worker's
    // next LEASE_REQUEST with SHUTDOWN (or on the worker's EOF) — tearing
    // the sockets down immediately would instead kill workers mid-recv
    // that are owed that frame. Force only the stragglers (a peer that
    // never sends again) after a grace window.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    {
      std::unique_lock lock(mutex);
      while (!active_fds.empty() &&
             std::chrono::steady_clock::now() < deadline) {
        lock.unlock();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        lock.lock();
      }
    }
    broadcast_shutdown();
    // Handlers registered after the broadcast see the aborted lease table
    // and exit on their own; the vector is stable once accept has joined.
    std::vector<std::thread> to_join;
    {
      std::lock_guard lock(mutex);
      to_join.swap(handlers);
    }
    for (std::thread& t : to_join) t.join();
  }
};

Coordinator::Coordinator(CampaignPlan plan, std::string spec_text,
                         CoordinatorOptions options)
    : impl_(std::make_unique<Impl>(std::move(plan), std::move(spec_text),
                                   std::move(options))) {}

Coordinator::~Coordinator() {
  if (impl_ != nullptr) {
    stop();
    impl_->join_threads();
  }
}

std::uint16_t Coordinator::port() const noexcept {
  return impl_->listener.port();
}

void Coordinator::stop() {
  {
    std::lock_guard lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->lease->abort();
  impl_->done_cv.notify_all();
}

CoordinatorResult Coordinator::serve() {
  Impl& impl = *impl_;
  Stopwatch watch;

  impl.accept_thread = std::thread([&impl] {
    while (true) {
      Socket socket = impl.listener.accept_connection();
      if (!socket.valid()) return;
      std::lock_guard lock(impl.mutex);
      if (impl.stopping) return;
      impl.handlers.emplace_back(
          [&impl, s = std::move(socket)]() mutable {
            impl.handle_connection(std::move(s));
          });
    }
  });

  // Live status: the standard progress snapshot with the fabric's lease /
  // worker counters folded into a "dist" section of status.json.
  std::unique_ptr<obs::ProgressReporter> reporter;
  if (!impl.options.status_path.empty() ||
      impl.options.heartbeat != nullptr) {
    obs::ProgressReporter::Options reporter_options;
    reporter_options.interval_seconds = impl.options.progress_interval;
    reporter_options.status_path = impl.options.status_path;
    reporter_options.heartbeat = impl.options.heartbeat;
    reporter = std::make_unique<obs::ProgressReporter>(
        reporter_options, [&impl, &watch] {
          obs::ProgressSnapshot s;
          s.campaign = impl.plan.name;
          s.jobs_total = impl.total;
          s.elapsed_seconds = watch.seconds();
          s.peak_rss_bytes = obs::peak_rss_bytes();
          const LeaseTable::Stats lease_stats = impl.lease->stats();
          std::lock_guard lock(impl.mutex);
          s.jobs_done = impl.resumed + impl.merged;
          s.jobs_resumed = impl.resumed;
          s.dist.active = true;
          s.dist.workers = impl.workers_connected;
          s.dist.shards_total = lease_stats.shards_total;
          s.dist.shards_pending = lease_stats.pending;
          s.dist.shards_leased = lease_stats.leased;
          s.dist.shards_done = lease_stats.done;
          s.dist.requeues = lease_stats.requeues;
          s.dist.results_merged = impl.merged;
          s.dist.duplicates = impl.duplicates;
          return s;
        });
  }

  // Wait for completion, sweeping stale leases on every poll tick — the
  // repair path for workers that are alive but wedged (dead ones requeue
  // instantly via their closed socket).
  const auto poll = std::chrono::duration<double>(
      std::clamp(impl.options.lease_timeout_seconds / 4.0, 0.05, 0.5));
  {
    std::unique_lock lock(impl.mutex);
    while (!impl.campaign_done() && !impl.errored && !impl.stopping) {
      impl.done_cv.wait_for(lock, poll);
      lock.unlock();
      const std::size_t swept = impl.lease->requeue_expired();
      if (swept > 0) {
        impl.log_line("lease timeout: requeued " + std::to_string(swept) +
                      " shard(s)");
      }
      lock.lock();
    }
  }

  if (reporter != nullptr) reporter->stop();
  impl.join_threads();

  CoordinatorResult result;
  {
    std::lock_guard lock(impl.mutex);
    result.resumed = impl.resumed;
    result.merged = impl.merged;
    result.duplicates = impl.duplicates;
    result.workers_served = impl.workers_served;
    result.complete = impl.campaign_done() && !impl.errored;
    if (impl.errored) throw SpecError(impl.first_error);
  }
  result.requeues = impl.lease->stats().requeues;

  if (result.complete && !impl.stem.empty()) {
    scenario::write_campaign_sinks(impl.plan, impl.results, impl.stem);
  }
  return result;
}

}  // namespace cobra::dist
