// SPDX-License-Identifier: MIT
//
// Lease table: the coordinator's view of which job shards are pending,
// leased to a worker, or done. The distributed analogue of what a
// regenerating-code controller does for lost fragments — a shard whose
// worker dies (connection drop) or stalls (lease timeout) is simply
// re-queued and repaired by whichever worker asks next; the journal's
// idempotent merge makes the duplicate work harmless.
//
// All operations are thread-safe; acquire() blocks until a shard is
// available, the campaign completes, or the table is aborted.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

namespace cobra::dist {

class LeaseTable {
 public:
  using Clock = std::chrono::steady_clock;

  /// `shards[i]` is the job-index list of shard i. `lease_timeout` bounds
  /// how long a leased shard may sit without any frame from its worker
  /// before requeue_expired() reclaims it.
  LeaseTable(std::vector<std::vector<std::size_t>> shards,
             std::chrono::milliseconds lease_timeout);

  /// Blocks until a pending shard can be leased to `worker` (returning its
  /// id), every shard is done (nullopt — the caller sends SHUTDOWN), or
  /// abort() was called (also nullopt).
  std::optional<std::size_t> acquire(std::uint64_t worker);

  /// Jobs of a shard, as constructed.
  const std::vector<std::size_t>& jobs(std::size_t shard) const {
    return shards_[shard];
  }

  /// Pushes the lease deadline out — called on every frame received from
  /// the owning worker (results are heartbeats).
  void renew(std::size_t shard, std::uint64_t worker);

  /// Marks a shard done (the worker streamed every result). Done is
  /// terminal whatever the current lease state: if the shard was requeued
  /// and re-leased in the meantime, the replacement's duplicate frames are
  /// dropped downstream at the journal.
  void complete(std::size_t shard);

  /// Requeues every shard leased to `worker` — the disconnect path; a
  /// killed worker's kernel closes its socket, so this fires immediately,
  /// long before the lease timeout would.
  std::size_t release_worker(std::uint64_t worker);

  /// Requeues every leased shard whose deadline has passed — the stalled
  /// (alive but wedged) worker path, driven by the coordinator's sweeper.
  std::size_t requeue_expired();

  /// Wakes every blocked acquire() with nullopt; the campaign is ending
  /// (error or external stop).
  void abort();

  bool all_done() const;
  bool aborted() const;

  struct Stats {
    std::size_t shards_total = 0;
    std::size_t pending = 0;
    std::size_t leased = 0;
    std::size_t done = 0;
    std::uint64_t requeues = 0;  ///< disconnects + expiries, cumulative
  };
  Stats stats() const;

 private:
  enum class State { kPending, kLeased, kDone };
  struct Entry {
    State state = State::kPending;
    std::uint64_t owner = 0;
    Clock::time_point deadline{};
  };

  const std::vector<std::vector<std::size_t>> shards_;
  const std::chrono::milliseconds lease_timeout_;
  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::vector<Entry> entries_;
  std::size_t done_ = 0;
  std::uint64_t requeues_ = 0;
  bool aborted_ = false;
};

}  // namespace cobra::dist
