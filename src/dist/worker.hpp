// SPDX-License-Identifier: MIT
//
// Campaign worker agent: connects to a coordinator, re-plans the campaign
// from the spec text shipped in the WELCOME frame, cross-checks the plan
// fingerprint (a stale binary whose planner diverged fails loudly instead
// of merging wrong results), then loops lease -> execute -> stream until
// the coordinator says SHUTDOWN. Jobs run through the exact code path
// run_campaign uses (build_campaign_graph + execute_campaign_job), so a
// result computed here serializes byte-identically to a local one.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace cobra::dist {

struct WorkerOptions {
  std::string host = "127.0.0.1";  ///< numeric IPv4 of the coordinator
  std::uint16_t port = 0;
  /// Jobs of one shard computed in parallel (0 = serial). Result frames
  /// stream as jobs finish either way — every frame renews the lease.
  std::size_t threads = 0;
  /// Per-event log lines (welcome, leases, shard completions).
  std::ostream* log = nullptr;
};

struct WorkerResult {
  std::uint64_t worker_id = 0;       ///< assigned by the coordinator
  std::size_t shards_completed = 0;
  std::size_t jobs_executed = 0;
  std::string coordinator_build;     ///< from the WELCOME frame
};

/// Runs the worker loop until clean SHUTDOWN. Throws ProtocolError on
/// transport failure or handshake rejection, SpecError on a fingerprint
/// mismatch or a job error (after notifying the coordinator).
WorkerResult run_worker(const WorkerOptions& options);

}  // namespace cobra::dist
