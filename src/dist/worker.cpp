// SPDX-License-Identifier: MIT
#include "dist/worker.hpp"

#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "dist/protocol.hpp"
#include "scenario/campaign.hpp"
#include "scenario/graph_cache.hpp"
#include "scenario/sink.hpp"
#include "sim/thread_pool.hpp"
#include "util/build_info.hpp"

namespace cobra::dist {

using scenario::CampaignPlan;
using scenario::GraphCache;
using scenario::JobSpec;
using scenario::ScenarioSpec;
using scenario::SpecError;

namespace {

struct WorkerState {
  Socket socket;
  std::mutex send_mutex;  ///< result frames may race from pool threads
  CampaignPlan plan;
  std::unique_ptr<GraphCache> cache;
  std::ostream* log = nullptr;
  std::uint64_t id = 0;

  void send(FrameType type, std::string_view payload) {
    std::lock_guard lock(send_mutex);
    socket.send_frame(type, payload);
  }

  void log_line(const std::string& text) {
    if (log != nullptr) {
      *log << "[worker " << id << "] " << text << "\n";
    }
  }
};

WelcomeMsg do_handshake(WorkerState& state) {
  HelloMsg hello;
  hello.journal_format = scenario::kJournalFormatVersion;
  hello.build_info = build_info_string();
  state.socket.send_frame(FrameType::kHello, encode_hello(hello));

  Frame frame;
  if (!state.socket.recv_frame(frame)) {
    throw ProtocolError("coordinator closed during handshake");
  }
  if (frame.type == FrameType::kReject) {
    throw ProtocolError("coordinator rejected worker: " + frame.payload);
  }
  if (frame.type != FrameType::kWelcome) {
    throw ProtocolError(std::string("expected WELCOME, got ") +
                        frame_type_name(frame.type));
  }
  const WelcomeMsg welcome = decode_welcome(frame.payload);
  if (welcome.protocol != kProtocolVersion ||
      welcome.journal_format != scenario::kJournalFormatVersion) {
    throw ProtocolError("coordinator version mismatch: protocol v" +
                        std::to_string(welcome.protocol) + " journal v" +
                        std::to_string(welcome.journal_format));
  }
  return welcome;
}

/// Executes one leased shard, streaming a JOB_RESULT frame per job (each
/// frame renews the lease — results are heartbeats) and SHARD_DONE at the
/// end. On a job failure the first error is reported via an ERROR frame
/// and rethrown as SpecError: deterministic jobs fail identically on every
/// worker, so retrying elsewhere cannot help.
std::size_t run_shard(WorkerState& state, const LeaseGrantMsg& grant,
                      std::size_t threads) {
  for (const std::uint64_t job : grant.jobs) {
    if (job >= state.plan.jobs.size()) {
      throw ProtocolError("lease grants out-of-range job " +
                          std::to_string(job));
    }
    state.cache->expect(state.plan.jobs[static_cast<std::size_t>(job)]);
  }

  std::mutex error_mutex;
  std::string first_error;
  const auto run_one = [&](std::size_t at) {
    const auto index = static_cast<std::size_t>(grant.jobs[at]);
    const JobSpec& job = state.plan.jobs[index];
    try {
      const GraphCache::Acquired acquired = state.cache->acquire(job);
      const scenario::JobResult result =
          scenario::execute_campaign_job(state.plan, job, *acquired.graph);
      state.cache->release(job);
      JobResultMsg msg;
      msg.shard = grant.shard;
      msg.job = index;
      msg.payload = scenario::serialize_job_result(result);
      state.send(FrameType::kJobResult, encode_job_result(msg));
    } catch (const std::exception& e) {
      state.cache->release(job);
      std::lock_guard lock(error_mutex);
      if (first_error.empty()) {
        first_error =
            "job " + std::to_string(index) + " failed: " + e.what();
      }
    }
  };

  if (threads > 0 && grant.jobs.size() > 1) {
    ThreadPool pool(threads);
    pool.parallel_for(grant.jobs.size(), run_one);
  } else {
    for (std::size_t at = 0; at < grant.jobs.size(); ++at) run_one(at);
  }

  if (!first_error.empty()) {
    state.send(FrameType::kError, first_error);
    throw SpecError(first_error);
  }
  WireWriter done;
  done.u64(grant.shard);
  state.send(FrameType::kShardDone, done.take());
  return grant.jobs.size();
}

}  // namespace

WorkerResult run_worker(const WorkerOptions& options) {
  WorkerState state;
  state.log = options.log;
  state.socket = Socket::connect_to(options.host, options.port);

  const WelcomeMsg welcome = do_handshake(state);
  state.id = welcome.worker_id;

  // Re-plan from the shipped spec and cross-check: render/parse round-trip
  // plus fingerprint equality proves this binary would expand the exact
  // same job grid the coordinator is merging into.
  const ScenarioSpec spec =
      ScenarioSpec::parse_string(welcome.spec_text, "<coordinator>");
  state.plan = scenario::plan_campaign(spec);
  if (state.plan.fingerprint != welcome.fingerprint) {
    const std::string message =
        "plan fingerprint mismatch: coordinator expects " +
        std::to_string(welcome.fingerprint) + ", this binary plans " +
        std::to_string(state.plan.fingerprint) +
        " — planner diverged between builds; upgrade the stale side";
    state.send(FrameType::kError, message);
    throw SpecError(message);
  }
  state.cache = std::make_unique<GraphCache>([&state](const JobSpec& job) {
    return scenario::build_campaign_graph(state.plan, job);
  });
  state.log_line("joined " + options.host + ":" +
                 std::to_string(options.port) + " campaign '" +
                 state.plan.name + "' (coordinator " + welcome.build_info +
                 ")");

  WorkerResult result;
  result.worker_id = welcome.worker_id;
  result.coordinator_build = welcome.build_info;

  Frame frame;
  while (true) {
    state.send(FrameType::kLeaseRequest, "");
    if (!state.socket.recv_frame(frame)) {
      throw ProtocolError("coordinator closed while awaiting lease");
    }
    if (frame.type == FrameType::kShutdown) {
      state.log_line("shutdown: campaign complete");
      break;
    }
    if (frame.type == FrameType::kError) {
      throw SpecError("coordinator error: " + frame.payload);
    }
    if (frame.type != FrameType::kLeaseGrant) {
      throw ProtocolError(std::string("expected LEASE_GRANT, got ") +
                          frame_type_name(frame.type));
    }
    const LeaseGrantMsg grant = decode_lease_grant(frame.payload);
    state.log_line("lease shard " + std::to_string(grant.shard) + " (" +
                   std::to_string(grant.jobs.size()) + " job(s))");
    result.jobs_executed += run_shard(state, grant, options.threads);
    ++result.shards_completed;
  }
  return result;
}

}  // namespace cobra::dist
