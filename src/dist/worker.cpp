// SPDX-License-Identifier: MIT
#include "dist/worker.hpp"

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <vector>

#include "dist/protocol.hpp"
#include "scenario/campaign.hpp"
#include "scenario/graph_cache.hpp"
#include "scenario/registry.hpp"
#include "scenario/sink.hpp"
#include "sim/thread_pool.hpp"
#include "util/build_info.hpp"

namespace cobra::dist {

using scenario::CampaignPlan;
using scenario::GraphCache;
using scenario::JobSpec;
using scenario::ScenarioSpec;
using scenario::SpecError;

namespace {

struct WorkerState {
  Socket socket;
  std::mutex send_mutex;  ///< result frames may race from pool threads
  CampaignPlan plan;
  std::unique_ptr<GraphCache> cache;
  std::ostream* log = nullptr;
  std::uint64_t id = 0;

  void send(FrameType type, std::string_view payload) {
    std::lock_guard lock(send_mutex);
    socket.send_frame(type, payload);
  }

  void log_line(const std::string& text) {
    if (log != nullptr) {
      *log << "[worker " << id << "] " << text << "\n";
    }
  }
};

WelcomeMsg do_handshake(WorkerState& state) {
  HelloMsg hello;
  hello.journal_format = scenario::kJournalFormatVersion;
  hello.build_info = build_info_string();
  state.socket.send_frame(FrameType::kHello, encode_hello(hello));

  Frame frame;
  if (!state.socket.recv_frame(frame)) {
    throw ProtocolError("coordinator closed during handshake");
  }
  if (frame.type == FrameType::kReject) {
    throw ProtocolError("coordinator rejected worker: " + frame.payload);
  }
  if (frame.type != FrameType::kWelcome) {
    throw ProtocolError(std::string("expected WELCOME, got ") +
                        frame_type_name(frame.type));
  }
  const WelcomeMsg welcome = decode_welcome(frame.payload);
  if (welcome.protocol != kProtocolVersion ||
      welcome.journal_format != scenario::kJournalFormatVersion) {
    throw ProtocolError("coordinator version mismatch: protocol v" +
                        std::to_string(welcome.protocol) + " journal v" +
                        std::to_string(welcome.journal_format));
  }
  return welcome;
}

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

/// mkdir -p for the directory components of `path` (the graph lands at
/// the same relative path the plan names, which may be nested).
void make_parent_dirs(const std::string& path) {
  for (std::size_t slash = path.find('/'); slash != std::string::npos;
       slash = path.find('/', slash + 1)) {
    if (slash == 0) continue;  // absolute-path root
    const std::string dir = path.substr(0, slash);
    ::mkdir(dir.c_str(), 0755);  // EEXIST is fine
  }
}

/// Downloads one plan-referenced graph file from the coordinator in
/// frame-sized byte ranges, writing to `<path>.part` and renaming into
/// place — a killed worker never leaves a plausible-looking half file.
void fetch_graph(WorkerState& state, const std::string& path) {
  constexpr std::uint32_t kChunk = 8u << 20;
  make_parent_dirs(path);
  const std::string part = path + ".part";
  std::ofstream out(part, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw SpecError("cannot write graph file '" + part + "'");
  }
  std::uint64_t offset = 0;
  std::uint64_t file_size = 0;
  Frame frame;
  do {
    GraphRequestMsg request;
    request.path = path;
    request.offset = offset;
    request.max_bytes = kChunk;
    state.send(FrameType::kGraphRequest, encode_graph_request(request));
    if (!state.socket.recv_frame(frame)) {
      throw ProtocolError("coordinator closed during graph fetch");
    }
    if (frame.type == FrameType::kError) {
      throw SpecError("coordinator error: " + frame.payload);
    }
    if (frame.type != FrameType::kGraphData) {
      throw ProtocolError(std::string("expected GRAPH_DATA, got ") +
                          frame_type_name(frame.type));
    }
    const GraphDataMsg data = decode_graph_data(frame.payload);
    file_size = data.file_size;
    if (offset < file_size && data.bytes.empty()) {
      throw ProtocolError("empty GRAPH_DATA mid-file for '" + path + "'");
    }
    out.write(data.bytes.data(),
              static_cast<std::streamsize>(data.bytes.size()));
    if (!out) throw SpecError("cannot write graph file '" + part + "'");
    offset += data.bytes.size();
  } while (offset < file_size);
  out.flush();
  out.close();
  if (std::rename(part.c_str(), path.c_str()) != 0) {
    throw SpecError("cannot move '" + part + "' into place");
  }
  state.log_line("fetched graph '" + path + "' (" +
                 std::to_string(file_size) + " bytes)");
}

/// Pre-fetches every family=file graph the plan references that is
/// missing locally — right after the handshake, before the lease loop, so
/// job execution never blocks on the wire. Paths stay exactly as written
/// in the spec (the worker runs in its own directory), which keeps graph
/// seeds and the plan fingerprint unchanged.
void fetch_missing_graphs(WorkerState& state) {
  std::set<std::string> wanted;
  for (const JobSpec& job : state.plan.jobs) {
    const std::string* family = scenario::find_param(job.graph, "family");
    const std::string* file = scenario::find_param(job.graph, "file");
    if (family != nullptr && *family == "file" && file != nullptr &&
        !file_exists(*file)) {
      wanted.insert(*file);
    }
  }
  for (const std::string& path : wanted) fetch_graph(state, path);
}

/// Executes one leased shard, streaming a JOB_RESULT frame per job (each
/// frame renews the lease — results are heartbeats) and SHARD_DONE at the
/// end. On a job failure the first error is reported via an ERROR frame
/// and rethrown as SpecError: deterministic jobs fail identically on every
/// worker, so retrying elsewhere cannot help.
std::size_t run_shard(WorkerState& state, const LeaseGrantMsg& grant,
                      std::size_t threads) {
  for (const std::uint64_t job : grant.jobs) {
    if (job >= state.plan.jobs.size()) {
      throw ProtocolError("lease grants out-of-range job " +
                          std::to_string(job));
    }
    state.cache->expect(state.plan.jobs[static_cast<std::size_t>(job)]);
  }

  std::mutex error_mutex;
  std::string first_error;
  const auto run_one = [&](std::size_t at) {
    const auto index = static_cast<std::size_t>(grant.jobs[at]);
    const JobSpec& job = state.plan.jobs[index];
    try {
      const GraphCache::Acquired acquired = state.cache->acquire(job);
      const scenario::JobResult result =
          scenario::execute_campaign_job(state.plan, job, *acquired.graph);
      state.cache->release(job);
      JobResultMsg msg;
      msg.shard = grant.shard;
      msg.job = index;
      msg.payload = scenario::serialize_job_result(result);
      state.send(FrameType::kJobResult, encode_job_result(msg));
    } catch (const std::exception& e) {
      state.cache->release(job);
      std::lock_guard lock(error_mutex);
      if (first_error.empty()) {
        first_error =
            "job " + std::to_string(index) + " failed: " + e.what();
      }
    }
  };

  if (threads > 0 && grant.jobs.size() > 1) {
    ThreadPool pool(threads);
    pool.parallel_for(grant.jobs.size(), run_one);
  } else {
    for (std::size_t at = 0; at < grant.jobs.size(); ++at) run_one(at);
  }

  if (!first_error.empty()) {
    state.send(FrameType::kError, first_error);
    throw SpecError(first_error);
  }
  WireWriter done;
  done.u64(grant.shard);
  state.send(FrameType::kShardDone, done.take());
  return grant.jobs.size();
}

}  // namespace

WorkerResult run_worker(const WorkerOptions& options) {
  WorkerState state;
  state.log = options.log;
  state.socket = Socket::connect_to(options.host, options.port);

  const WelcomeMsg welcome = do_handshake(state);
  state.id = welcome.worker_id;

  // Re-plan from the shipped spec and cross-check: render/parse round-trip
  // plus fingerprint equality proves this binary would expand the exact
  // same job grid the coordinator is merging into.
  const ScenarioSpec spec =
      ScenarioSpec::parse_string(welcome.spec_text, "<coordinator>");
  state.plan = scenario::plan_campaign(spec);
  if (state.plan.fingerprint != welcome.fingerprint) {
    const std::string message =
        "plan fingerprint mismatch: coordinator expects " +
        std::to_string(welcome.fingerprint) + ", this binary plans " +
        std::to_string(state.plan.fingerprint) +
        " — planner diverged between builds; upgrade the stale side";
    state.send(FrameType::kError, message);
    throw SpecError(message);
  }
  fetch_missing_graphs(state);
  state.cache = std::make_unique<GraphCache>([&state](const JobSpec& job) {
    return scenario::build_campaign_graph(state.plan, job);
  });
  state.log_line("joined " + options.host + ":" +
                 std::to_string(options.port) + " campaign '" +
                 state.plan.name + "' (coordinator " + welcome.build_info +
                 ")");

  WorkerResult result;
  result.worker_id = welcome.worker_id;
  result.coordinator_build = welcome.build_info;

  Frame frame;
  while (true) {
    state.send(FrameType::kLeaseRequest, "");
    if (!state.socket.recv_frame(frame)) {
      throw ProtocolError("coordinator closed while awaiting lease");
    }
    if (frame.type == FrameType::kShutdown) {
      state.log_line("shutdown: campaign complete");
      break;
    }
    if (frame.type == FrameType::kError) {
      throw SpecError("coordinator error: " + frame.payload);
    }
    if (frame.type != FrameType::kLeaseGrant) {
      throw ProtocolError(std::string("expected LEASE_GRANT, got ") +
                          frame_type_name(frame.type));
    }
    const LeaseGrantMsg grant = decode_lease_grant(frame.payload);
    state.log_line("lease shard " + std::to_string(grant.shard) + " (" +
                   std::to_string(grant.jobs.size()) + " job(s))");
    result.jobs_executed += run_shard(state, grant, options.threads);
    ++result.shards_completed;
  }
  return result;
}

}  // namespace cobra::dist
