// SPDX-License-Identifier: MIT
#include "dist/protocol.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace cobra::dist {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw ProtocolError(what + ": " + std::strerror(errno));
}

void put_le(std::string& out, std::uint64_t value, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

std::uint64_t get_le(const unsigned char* data, std::size_t bytes) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    value |= static_cast<std::uint64_t>(data[i]) << (8 * i);
  }
  return value;
}

}  // namespace

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kWelcome: return "WELCOME";
    case FrameType::kReject: return "REJECT";
    case FrameType::kLeaseRequest: return "LEASE_REQUEST";
    case FrameType::kLeaseGrant: return "LEASE_GRANT";
    case FrameType::kShutdown: return "SHUTDOWN";
    case FrameType::kJobResult: return "JOB_RESULT";
    case FrameType::kShardDone: return "SHARD_DONE";
    case FrameType::kError: return "ERROR";
    case FrameType::kGraphRequest: return "GRAPH_REQUEST";
    case FrameType::kGraphData: return "GRAPH_DATA";
  }
  return "UNKNOWN";
}

// ---- WireWriter / WireReader ----

void WireWriter::u8(std::uint8_t value) { put_le(data_, value, 1); }
void WireWriter::u32(std::uint32_t value) { put_le(data_, value, 4); }
void WireWriter::u64(std::uint64_t value) { put_le(data_, value, 8); }

void WireWriter::str(std::string_view value) {
  if (value.size() > kMaxFramePayload) {
    throw ProtocolError("string field exceeds frame limit");
  }
  u32(static_cast<std::uint32_t>(value.size()));
  data_.append(value.data(), value.size());
}

const unsigned char* WireReader::need(std::size_t bytes) {
  if (data_.size() - pos_ < bytes) {
    throw ProtocolError("malformed frame: payload underflow");
  }
  const auto* at =
      reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
  pos_ += bytes;
  return at;
}

std::uint8_t WireReader::u8() {
  return static_cast<std::uint8_t>(get_le(need(1), 1));
}
std::uint32_t WireReader::u32() {
  return static_cast<std::uint32_t>(get_le(need(4), 4));
}
std::uint64_t WireReader::u64() { return get_le(need(8), 8); }

std::string WireReader::str() {
  const std::uint32_t length = u32();
  const unsigned char* at = need(length);
  return std::string(reinterpret_cast<const char*>(at), length);
}

// ---- Socket ----

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Socket Socket::connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket socket(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw ProtocolError("invalid host address '" + host +
                        "' (numeric IPv4 expected)");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("connect to " + host + ":" + std::to_string(port));
  }
  // Lease/result frames are small and latency-sensitive; don't batch them.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return socket;
}

void Socket::send_all(const void* data, std::size_t bytes) {
  const char* at = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t sent = ::send(fd_, at, bytes, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    at += sent;
    bytes -= static_cast<std::size_t>(sent);
  }
}

bool Socket::recv_all(void* data, std::size_t bytes, bool eof_ok) {
  char* at = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < bytes) {
    const ssize_t n = ::recv(fd_, at + got, bytes - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (eof_ok && got == 0) return false;
      throw ProtocolError("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::send_frame(FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw ProtocolError("frame payload exceeds limit");
  }
  std::string header;
  put_le(header, payload.size(), 4);
  put_le(header, static_cast<std::uint8_t>(type), 1);
  send_all(header.data(), header.size());
  if (!payload.empty()) send_all(payload.data(), payload.size());
}

bool Socket::recv_frame(Frame& frame) {
  unsigned char header[5];
  if (!recv_all(header, sizeof header, /*eof_ok=*/true)) return false;
  const auto length = static_cast<std::uint32_t>(get_le(header, 4));
  if (length > kMaxFramePayload) {
    throw ProtocolError("frame length " + std::to_string(length) +
                        " exceeds limit (corrupt stream?)");
  }
  frame.type = static_cast<FrameType>(header[4]);
  frame.payload.resize(length);
  if (length > 0) recv_all(frame.payload.data(), length, /*eof_ok=*/false);
  return true;
}

// ---- Listener ----

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);  // unblock a thread stuck in accept
    ::close(fd_);
    fd_ = -1;
  }
}

Listener Listener::bind_local(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Listener listener;
  listener.fd_ = fd;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 64) != 0) throw_errno("listen");
  socklen_t addr_len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    throw_errno("getsockname");
  }
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Socket Listener::accept_connection() {
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Socket();  // listener closed (EBADF/EINVAL) — accept loop exits
  }
}

// ---- message codecs ----

std::string encode_hello(const HelloMsg& msg) {
  WireWriter w;
  w.u32(msg.protocol);
  w.u32(msg.journal_format);
  w.str(msg.build_info);
  return w.take();
}

HelloMsg decode_hello(std::string_view payload) {
  WireReader r(payload);
  HelloMsg msg;
  msg.protocol = r.u32();
  msg.journal_format = r.u32();
  msg.build_info = r.str();
  return msg;
}

std::string encode_welcome(const WelcomeMsg& msg) {
  WireWriter w;
  w.u32(msg.protocol);
  w.u32(msg.journal_format);
  w.str(msg.build_info);
  w.u64(msg.fingerprint);
  w.u64(msg.worker_id);
  w.str(msg.spec_text);
  return w.take();
}

WelcomeMsg decode_welcome(std::string_view payload) {
  WireReader r(payload);
  WelcomeMsg msg;
  msg.protocol = r.u32();
  msg.journal_format = r.u32();
  msg.build_info = r.str();
  msg.fingerprint = r.u64();
  msg.worker_id = r.u64();
  msg.spec_text = r.str();
  return msg;
}

std::string encode_lease_grant(const LeaseGrantMsg& msg) {
  WireWriter w;
  w.u64(msg.shard);
  w.u32(static_cast<std::uint32_t>(msg.jobs.size()));
  for (const std::uint64_t job : msg.jobs) w.u64(job);
  return w.take();
}

LeaseGrantMsg decode_lease_grant(std::string_view payload) {
  WireReader r(payload);
  LeaseGrantMsg msg;
  msg.shard = r.u64();
  const std::uint32_t count = r.u32();
  msg.jobs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) msg.jobs.push_back(r.u64());
  return msg;
}

std::string encode_job_result(const JobResultMsg& msg) {
  WireWriter w;
  w.u64(msg.shard);
  w.u64(msg.job);
  w.str(msg.payload);
  return w.take();
}

JobResultMsg decode_job_result(std::string_view payload) {
  WireReader r(payload);
  JobResultMsg msg;
  msg.shard = r.u64();
  msg.job = r.u64();
  msg.payload = r.str();
  return msg;
}

std::string encode_graph_request(const GraphRequestMsg& msg) {
  WireWriter w;
  w.str(msg.path);
  w.u64(msg.offset);
  w.u32(msg.max_bytes);
  return w.take();
}

GraphRequestMsg decode_graph_request(std::string_view payload) {
  WireReader r(payload);
  GraphRequestMsg msg;
  msg.path = r.str();
  msg.offset = r.u64();
  msg.max_bytes = r.u32();
  return msg;
}

std::string encode_graph_data(const GraphDataMsg& msg) {
  WireWriter w;
  w.u64(msg.file_size);
  w.str(msg.bytes);
  return w.take();
}

GraphDataMsg decode_graph_data(std::string_view payload) {
  WireReader r(payload);
  GraphDataMsg msg;
  msg.file_size = r.u64();
  msg.bytes = r.str();
  return msg;
}

}  // namespace cobra::dist
