// SPDX-License-Identifier: MIT
//
// Campaign coordinator: owns the plan, fingerprint, journal, and final
// sinks; partitions the pending job grid into shards and leases them to
// worker agents over the dist/ protocol. Result frames merge into the
// journal idempotently (duplicates from a re-run shard are dropped by job
// index), so the JSONL/CSV a distributed campaign writes are byte-identical
// to a single-process run of the same spec — whatever the worker count,
// shard order, or failure pattern (CI-enforced with cmp).
//
// Failure model: a worker disconnect (kill -9 included — the kernel closes
// its socket) requeues its leased shards immediately; an alive-but-wedged
// worker is reclaimed by the lease-timeout sweeper. A worker whose plan
// fingerprint, protocol, or journal-format version disagrees is rejected
// at the handshake. A worker reporting a job *error* (not a death) aborts
// the campaign — deterministic jobs fail identically everywhere, so
// re-queueing would loop forever.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "scenario/campaign.hpp"

namespace cobra::dist {

struct CoordinatorOptions {
  /// TCP port on 127.0.0.1; 0 = kernel-assigned (see Coordinator::port).
  std::uint16_t port = 0;
  /// Jobs per shard; 0 = auto (pending/8 clamped to [1, 64]). Small shards
  /// spread better and re-run cheaper; large shards amortize lease
  /// round-trips.
  std::size_t shard_size = 0;
  /// Reclaim a leased shard after this long without any frame from its
  /// worker. Disconnects requeue immediately regardless.
  double lease_timeout_seconds = 30.0;
  /// Pick up a matching journal (mismatch throws); false truncates.
  bool resume = true;
  /// Overrides plan.output when non-empty.
  std::string output;
  /// Per-event log lines (worker joins, leases, requeues); nullptr = quiet.
  std::ostream* log = nullptr;
  /// status.json path ("" = off) and heartbeat stream/interval — the obs/
  /// progress layer with the fabric's own lease/worker counters folded in.
  std::string status_path;
  std::ostream* heartbeat = nullptr;
  double progress_interval = 2.0;
};

struct CoordinatorResult {
  bool complete = false;
  std::size_t resumed = 0;      ///< jobs restored from the journal
  std::size_t merged = 0;       ///< result frames accepted (first copies)
  std::size_t duplicates = 0;   ///< frames dropped by the idempotent merge
  std::size_t requeues = 0;     ///< shard leases reclaimed (dead/stalled)
  std::size_t workers_served = 0;  ///< handshakes completed
};

class Coordinator {
 public:
  /// Binds the listener (so port() is valid immediately), opens/restores
  /// the journal, and partitions the pending jobs. `spec_text` is the
  /// rendered spec shipped to workers in the WELCOME frame — render it
  /// from the same ScenarioSpec the plan came from, CLI overrides
  /// included, or workers will compute a different fingerprint and refuse.
  Coordinator(scenario::CampaignPlan plan, std::string spec_text,
              CoordinatorOptions options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// The bound port — what workers --connect to.
  std::uint16_t port() const noexcept;

  /// Serves until every job is merged (writes the final sinks, returns) or
  /// a worker reports a job error (throws SpecError with the worker's
  /// message). Blocks; run workers from other processes or threads.
  CoordinatorResult serve();

  /// Unblocks serve() from another thread (tests); the campaign is left
  /// checkpointed, not complete.
  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cobra::dist
