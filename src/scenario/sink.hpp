// SPDX-License-Identifier: MIT
//
// Campaign output plumbing: deterministic JSONL / CSV record rendering and
// the append-only checkpoint journal.
//
// Journal format (one file per campaign, `<stem>.journal`):
//   cobra-scenario-journal v1 fp=<fingerprint-hex> jobs=<N>
//   job <index> <payload-bytes> <payload>
// The payload is a whitespace-separated JobResult serialization whose
// doubles round-trip exactly (%.17g), so records restored on resume render
// byte-identically to freshly computed ones. Each line is flushed as the
// job completes; a line truncated by a kill fails its length check and is
// simply re-run on resume.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <string>

#include "scenario/campaign.hpp"

namespace cobra::scenario {

/// Shortest decimal string that parses back to exactly `value`.
std::string format_double(double value);

/// One JSONL record for a finished job (no trailing newline).
std::string jsonl_record(const CampaignPlan& plan, const JobSpec& job,
                         const JobResult& result);

/// CSV column line; faults=true appends the fault-layer columns (PDR,
/// energy, delivered/dropped/blocked totals). Campaigns without a [faults]
/// section keep the legacy header byte-for-byte.
std::string csv_header(bool faults = false);
std::string csv_row(const CampaignPlan& plan, const JobSpec& job,
                    const JobResult& result);

/// JobResult <-> journal payload.
std::string serialize_job_result(const JobResult& result);
bool parse_job_result(const std::string& payload, JobResult& result);

class Journal {
 public:
  /// Opens `path`. With resume=true an existing journal whose header
  /// matches is replayed into restored(); a header mismatch throws
  /// SpecError (the spec changed under the journal). The file is then
  /// rewritten as header + restored frames, so any partial frame left by
  /// a kill mid-write is dropped before new appends follow it.
  Journal(const std::string& path, const CampaignPlan& plan, bool resume);

  /// Restored (job index -> payload-parsed result) entries.
  const std::map<std::size_t, JobResult>& restored() const {
    return restored_;
  }

  /// Appends one completed job and flushes. Not thread-safe; callers
  /// serialize (the campaign runner appends under its results mutex).
  void append(std::size_t index, const JobResult& result);

  /// Appends a free-form telemetry frame ("note <text>") and flushes —
  /// e.g. per-graph build times. Note frames are skipped by the resume
  /// parser and dropped on rewrite; they never affect campaign results.
  void note(const std::string& text);

 private:
  std::ofstream out_;
  std::map<std::size_t, JobResult> restored_;
};

}  // namespace cobra::scenario
