// SPDX-License-Identifier: MIT
//
// Campaign output plumbing: deterministic JSONL / CSV record rendering and
// the append-only checkpoint journal.
//
// Journal format (one file per campaign, `<stem>.journal`):
//   cobra-scenario-journal v1 fp=<fingerprint-hex> jobs=<N>
//   job <index> <payload-bytes> <payload>
// The payload is a whitespace-separated JobResult serialization whose
// doubles round-trip exactly (%.17g), so records restored on resume render
// byte-identically to freshly computed ones. Each line is flushed *and
// fsync'd* as the job completes — with distributed workers a kill is a
// routine event, not an edge case — and a frame torn by a kill mid-write
// fails its length check on restore and is simply re-run (the restore
// rewrite truncates it away and continues).
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "scenario/campaign.hpp"

namespace cobra::scenario {

/// Journal on-disk format version (the "v1" in the header line). The
/// distributed handshake exchanges it so a stale worker binary that would
/// produce frames the coordinator cannot merge fails loudly up front.
inline constexpr std::uint32_t kJournalFormatVersion = 1;

/// Shortest decimal string that parses back to exactly `value`.
std::string format_double(double value);

/// One JSONL record for a finished job (no trailing newline).
std::string jsonl_record(const CampaignPlan& plan, const JobSpec& job,
                         const JobResult& result);

/// CSV column line; faults=true appends the fault-layer columns (PDR,
/// energy, delivered/dropped/blocked totals). Campaigns without a [faults]
/// section keep the legacy header byte-for-byte.
std::string csv_header(bool faults = false);
std::string csv_row(const CampaignPlan& plan, const JobSpec& job,
                    const JobResult& result);

/// JobResult <-> journal payload.
std::string serialize_job_result(const JobResult& result);
bool parse_job_result(const std::string& payload, JobResult& result);

class Journal {
 public:
  /// Opens `path`. With resume=true an existing journal whose header
  /// matches is replayed into restored(); a header mismatch throws
  /// SpecError (the spec changed under the journal). The file is then
  /// rewritten as header + restored frames, so any partial frame left by
  /// a kill mid-write is dropped before new appends follow it.
  Journal(const std::string& path, const CampaignPlan& plan, bool resume);

  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Restored (job index -> payload-parsed result) entries.
  const std::map<std::size_t, JobResult>& restored() const {
    return restored_;
  }

  /// True if `index` has a frame in this journal (restored or written by
  /// this instance) — the idempotency check merge() is built on.
  bool contains(std::size_t index) const {
    return written_.count(index) != 0;
  }

  /// Appends one completed job, flushes, and fsyncs. Not thread-safe;
  /// callers serialize (the campaign runner appends under its results
  /// mutex, the dist coordinator under its merge mutex).
  void append(std::size_t index, const JobResult& result);

  /// Merge-by-frame: appends `result` only if `index` has no frame yet,
  /// returning whether a frame was written. Duplicate frames — a re-run
  /// shard after a lease requeue, a slow worker racing its replacement —
  /// are dropped here, which is what keeps a distributed campaign's journal
  /// (and therefore its final sinks) byte-identical to a single-process
  /// run whatever the worker failure pattern.
  bool merge(std::size_t index, const JobResult& result);

  /// Appends a free-form telemetry frame ("note <text>") and flushes —
  /// e.g. per-graph build times or worker build-info stamps. Note frames
  /// are skipped by the resume parser and dropped on rewrite; they never
  /// affect campaign results.
  void note(const std::string& text);

 private:
  std::FILE* out_ = nullptr;
  std::map<std::size_t, JobResult> restored_;
  std::set<std::size_t> written_;  ///< restored + appended indices
};

}  // namespace cobra::scenario
