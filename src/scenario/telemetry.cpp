// SPDX-License-Identifier: MIT
#include "scenario/telemetry.hpp"

#include <stdexcept>

#include "scenario/spec.hpp"

namespace cobra::scenario {

void parse_telemetry_sink(const std::string& value, bool& enabled,
                          std::string& path) {
  if (value == "0") {
    enabled = false;
    path.clear();
  } else if (value == "1") {
    enabled = true;
    path.clear();
  } else {
    enabled = true;
    path = value;
  }
}

void TelemetryConfig::resolve_paths(const std::string& stem) {
  if (progress_interval > 0.0) status = true;
  if (status && status_path.empty()) status_path = stem + ".status.json";
  if (trace && trace_path.empty()) trace_path = stem + ".trace.json";
  if (rounds && rounds_path.empty()) rounds_path = stem + ".rounds.jsonl";
}

std::string TelemetryConfig::sinks_description() const {
  std::string out;
  const auto add = [&out](const char* name) {
    if (!out.empty()) out += ',';
    out += name;
  };
  if (progress_interval > 0.0) add("progress");
  if (status) add("status");
  if (trace) add("trace");
  if (rounds) add("rounds");
  return out.empty() ? "none" : out;
}

std::uint64_t telemetry_buffer_bytes(const TelemetryConfig& config,
                                     std::size_t threads,
                                     std::size_t round_limit) {
  if (!config.any()) return 0;
  const std::uint64_t participants = threads + 1;  // workers + caller
  // Metrics shards always exist once telemetry is on (the registry is
  // the backbone every sink reads). Size mirrors CampaignTelemetry's
  // registrations: 4 counters + 3 histograms.
  std::uint64_t per_thread =
      4 * sizeof(obs::RelaxedCell) +
      3 * (sizeof(std::uint64_t) * (obs::kHistogramBuckets + 4));
  if (config.trace) {
    per_thread += obs::TraceCollector::kReservePerThread *
                  sizeof(obs::TraceCollector::Event);
  }
  if (config.rounds) {
    per_thread += obs::RoundRecorder::buffer_bytes(
        round_limit, config.rounds_sample_every);
  }
  return participants * per_thread;
}

CampaignTelemetry::CampaignTelemetry(const TelemetryConfig& config)
    : config_(config) {
  jobs_done = metrics_.counter("jobs_done");
  trials_done = metrics_.counter("trials_done");
  trials_failed = metrics_.counter("trials_failed");
  graph_builds = metrics_.counter("graph_builds");
  job_seconds = metrics_.histogram("job_seconds", 1e-6);
  trial_rounds = metrics_.histogram("trial_rounds", 1.0);
  graph_build_seconds = metrics_.histogram("graph_build_seconds", 1e-6);
  if (config_.trace) trace_ = std::make_unique<obs::TraceCollector>();
  if (config_.rounds) {
    rounds_ = std::make_unique<obs::RoundsSink>(config_.rounds_path);
  }
}

bool CampaignTelemetry::write_trace() const {
  if (trace_ == nullptr) return true;
  return trace_->write(config_.trace_path);
}

}  // namespace cobra::scenario
