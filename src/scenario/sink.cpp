// SPDX-License-Identifier: MIT
#include "scenario/sink.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace cobra::scenario {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_params_object(std::string& out, const ParamMap& params) {
  out += '{';
  bool first = true;
  for (const auto& [key, value] : params) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(key);
    out += "\":\"";
    out += json_escape(value);
    out += '"';
  }
  out += '}';
}

void append_summary_object(std::string& out, const Summary& summary) {
  char buf[256];
  std::snprintf(buf, sizeof buf, "{\"count\":%zu", summary.count);
  out += buf;
  const std::pair<const char*, double> fields[] = {
      {"mean", summary.mean}, {"stddev", summary.stddev},
      {"min", summary.min},   {"median", summary.median},
      {"p90", summary.p90},   {"p99", summary.p99},
      {"max", summary.max},
  };
  for (const auto& [name, value] : fields) {
    out += ",\"";
    out += name;
    out += "\":";
    out += format_double(value);
  }
  out += '}';
}

/// Params joined "k=v;..." minus the dispatch key ("family" / "name").
std::string params_compact(const ParamMap& params, std::string_view skip) {
  std::string out;
  for (const auto& [key, value] : params) {
    if (key == skip) continue;
    if (!out.empty()) out += ';';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void append_summary_payload(std::ostringstream& os, const Summary& s) {
  char buf[32];
  os << ' ' << s.count;
  for (const double value :
       {s.mean, s.stddev, s.min, s.median, s.p90, s.p99, s.max}) {
    std::snprintf(buf, sizeof buf, "%.17g", value);
    os << ' ' << buf;
  }
}

bool read_summary_payload(std::istringstream& is, Summary& s) {
  return static_cast<bool>(is >> s.count >> s.mean >> s.stddev >> s.min >>
                           s.median >> s.p90 >> s.p99 >> s.max);
}

std::string journal_header(const CampaignPlan& plan) {
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "cobra-scenario-journal v%u fp=%016llx jobs=%zu",
                kJournalFormatVersion,
                static_cast<unsigned long long>(plan.fingerprint),
                plan.jobs.size());
  return buf;
}

/// Flush to the kernel, then to the platter. Worker kills make partial
/// writes routine; an fsync per frame bounds the loss to exactly the frame
/// being written when the power went (and the restore parser drops that
/// torn tail and re-runs its job).
void flush_and_sync(std::FILE* out) {
  std::fflush(out);
  ::fsync(::fileno(out));
}

}  // namespace

std::string format_double(double value) {
  char buf[64];
  // Integral values (the common case: round counts) print as integers;
  // everything else gets the shortest precision that round-trips exactly.
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      value > -1e15 && value < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    return buf;
  }
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::string jsonl_record(const CampaignPlan& plan, const JobSpec& job,
                         const JobResult& result) {
  std::string out;
  out.reserve(512);
  char buf[128];
  std::snprintf(buf, sizeof buf, "{\"job\":%zu,\"campaign\":\"", job.index);
  out += buf;
  out += json_escape(plan.name);
  std::snprintf(buf, sizeof buf, "\",\"seed\":%llu,\"graph\":",
                static_cast<unsigned long long>(job.seed_index));
  out += buf;
  append_params_object(out, job.graph);
  out += ",\"process\":";
  append_params_object(out, job.process);
  out += ",\"graph_name\":\"";
  out += json_escape(result.graph_name);
  std::snprintf(buf, sizeof buf, "\",\"trials\":%zu,\"failed\":%zu,\"rounds\":",
                result.trials, result.failed);
  out += buf;
  append_summary_object(out, result.rounds);
  out += ",\"transmissions\":";
  append_summary_object(out, result.transmissions);
  if (result.faulty) {
    out += ",\"faults\":";
    append_params_object(out, job.faults);
    out += ",\"pdr\":";
    append_summary_object(out, result.pdr);
    out += ",\"energy\":";
    append_summary_object(out, result.energy);
    std::snprintf(buf, sizeof buf,
                  ",\"delivered\":%llu,\"dropped\":%llu,\"blocked\":%llu",
                  static_cast<unsigned long long>(result.delivered),
                  static_cast<unsigned long long>(result.dropped),
                  static_cast<unsigned long long>(result.blocked));
    out += buf;
  }
  out += '}';
  return out;
}

std::string csv_header(bool faults) {
  std::string out =
      "job,seed,graph_name,family,graph_params,process,process_params,"
      "trials,failed,rounds_count,rounds_mean,rounds_stddev,rounds_min,"
      "rounds_median,rounds_p90,rounds_p99,rounds_max,tx_mean,tx_p90,"
      "tx_max";
  if (faults) {
    out +=
        ",fault_params,pdr_mean,pdr_min,energy_mean,energy_max,"
        "delivered,dropped,blocked";
  }
  return out;
}

std::string csv_row(const CampaignPlan& plan, const JobSpec& job,
                    const JobResult& result) {
  (void)plan;
  const std::string* family = find_param(job.graph, "family");
  const std::string* process = find_param(job.process, "name");
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%zu,%llu,", job.index,
                static_cast<unsigned long long>(job.seed_index));
  out += buf;
  out += csv_escape(result.graph_name);
  out += ',';
  out += csv_escape(family != nullptr ? *family : "");
  out += ',';
  out += csv_escape(params_compact(job.graph, "family"));
  out += ',';
  out += csv_escape(process != nullptr ? *process : "");
  out += ',';
  out += csv_escape(params_compact(job.process, "name"));
  std::snprintf(buf, sizeof buf, ",%zu,%zu,%zu,", result.trials,
                result.failed, result.rounds.count);
  out += buf;
  const double fields[] = {
      result.rounds.mean,   result.rounds.stddev, result.rounds.min,
      result.rounds.median, result.rounds.p90,    result.rounds.p99,
      result.rounds.max,    result.transmissions.mean,
      result.transmissions.p90, result.transmissions.max,
  };
  bool first = true;
  for (const double value : fields) {
    if (!first) out += ',';
    first = false;
    out += format_double(value);
  }
  if (result.faulty) {
    out += ',';
    out += csv_escape(params_compact(job.faults, ""));
    for (const double value : {result.pdr.mean, result.pdr.min,
                               result.energy.mean, result.energy.max}) {
      out += ',';
      out += format_double(value);
    }
    std::snprintf(buf, sizeof buf, ",%llu,%llu,%llu",
                  static_cast<unsigned long long>(result.delivered),
                  static_cast<unsigned long long>(result.dropped),
                  static_cast<unsigned long long>(result.blocked));
    out += buf;
  }
  return out;
}

std::string serialize_job_result(const JobResult& result) {
  std::ostringstream os;
  os << result.trials << ' ' << result.failed;
  append_summary_payload(os, result.rounds);
  append_summary_payload(os, result.transmissions);
  // The optional fault block ("F" marker + pdr/energy summaries + raw
  // delivery totals) sits before the graph name; faults-off payloads are
  // byte-identical to the pre-fault-layer format, so old journals resume.
  if (result.faulty) {
    os << " F";
    append_summary_payload(os, result.pdr);
    append_summary_payload(os, result.energy);
    os << ' ' << result.delivered << ' ' << result.dropped << ' '
       << result.blocked;
  }
  os << ' ' << result.graph_name;
  return os.str();
}

bool parse_job_result(const std::string& payload, JobResult& result) {
  std::istringstream is(payload);
  if (!(is >> result.trials >> result.failed)) return false;
  if (!read_summary_payload(is, result.rounds)) return false;
  if (!read_summary_payload(is, result.transmissions)) return false;
  result.faulty = false;
  result.pdr = Summary{};
  result.energy = Summary{};
  result.delivered = result.dropped = result.blocked = 0;
  const std::istringstream::pos_type before_marker = is.tellg();
  std::string marker;
  if (is >> marker && marker == "F") {
    result.faulty = true;
    if (!read_summary_payload(is, result.pdr)) return false;
    if (!read_summary_payload(is, result.energy)) return false;
    if (!(is >> result.delivered >> result.dropped >> result.blocked)) {
      return false;
    }
  } else {
    // Legacy faults-off payload — rewind so the token is re-read as (the
    // head of) the graph name.
    is.clear();
    is.seekg(before_marker);
  }
  is.get();  // the separating space
  std::getline(is, result.graph_name);
  return !result.graph_name.empty();
}

Journal::Journal(const std::string& path, const CampaignPlan& plan,
                 bool resume) {
  const std::string header = journal_header(plan);
  if (resume) {
    std::ifstream in(path);
    if (in) {
      std::string line;
      if (std::getline(in, line)) {
        if (line != header) {
          throw SpecError(
              "journal '" + path + "' belongs to a different campaign "
              "(spec, trials, or base_seed changed); rerun with --fresh to "
              "discard it");
        }
        while (std::getline(in, line)) {
          std::size_t index = 0;
          std::size_t length = 0;
          int consumed = 0;
          if (std::sscanf(line.c_str(), "job %zu %zu %n", &index, &length,
                          &consumed) != 2) {
            continue;  // partial frame from a kill mid-write
          }
          const std::string body = line.substr(consumed);
          if (body.size() != length || index >= plan.jobs.size()) continue;
          JobResult result;
          if (parse_job_result(body, result)) restored_[index] = result;
        }
      }
    }
  }
  // Rewrite header + restored frames from scratch: a kill mid-write leaves
  // a partial line with no terminator (a torn trailing frame), and
  // appending after it would glue the next record onto the garbage, losing
  // a valid checkpoint on the following resume. The rewrite truncates the
  // torn tail away and continues; it goes through a temp file + rename
  // (fsync'd before the rename) so a kill during the rewrite itself cannot
  // destroy prior checkpoints.
  const std::string tmp = path + ".tmp";
  {
    std::FILE* rewrite = std::fopen(tmp.c_str(), "w");
    if (rewrite == nullptr) {
      throw SpecError("cannot open journal '" + tmp + "' for writing");
    }
    bool ok = std::fprintf(rewrite, "%s\n", header.c_str()) > 0;
    for (const auto& [index, result] : restored_) {
      const std::string payload = serialize_job_result(result);
      ok = ok && std::fprintf(rewrite, "job %zu %zu %s\n", index,
                              payload.size(), payload.c_str()) > 0;
    }
    flush_and_sync(rewrite);
    ok = ok && std::ferror(rewrite) == 0;
    std::fclose(rewrite);
    if (!ok) throw SpecError("failed writing journal '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw SpecError("cannot replace journal '" + path + "'");
  }
  for (const auto& [index, result] : restored_) written_.insert(index);
  out_ = std::fopen(path.c_str(), "a");
  if (out_ == nullptr) {
    throw SpecError("cannot open journal '" + path + "' for writing");
  }
}

Journal::~Journal() {
  if (out_ != nullptr) std::fclose(out_);
}

void Journal::append(std::size_t index, const JobResult& result) {
  const std::string payload = serialize_job_result(result);
  std::fprintf(out_, "job %zu %zu %s\n", index, payload.size(),
               payload.c_str());
  flush_and_sync(out_);
  written_.insert(index);
}

bool Journal::merge(std::size_t index, const JobResult& result) {
  if (contains(index)) return false;
  append(index, result);
  return true;
}

void Journal::note(const std::string& text) {
  std::fprintf(out_, "note %s\n", text.c_str());
  flush_and_sync(out_);
}

}  // namespace cobra::scenario
