// SPDX-License-Identifier: MIT
//
// Declarative scenario specs: the plain-text format that drives experiment
// campaigns (parsed here, planned in campaign.hpp, executed by the
// scenario_runner CLI). No external dependencies — the grammar is plain
// `key = value` lines grouped under `[section]` headers:
//
//   # comment (also mid-line, stripped from '#')
//   [campaign]
//   name = cover_vs_n
//   trials = 20
//   base_seed = 20260612
//
//   [graph]
//   family = random_regular
//   n = 256..8192 *2        # sweep axis: geometric range
//   r = 8
//
//   [process]
//   name = cobra
//   k = 2
//
// Values may be sweep expressions (expanded by expand_values):
//   scalar          "8"
//   list            "0.05, 0.1, 0.2"
//   geometric range "256..8192 *2"   (lo, lo*m, ... while <= hi)
//   arithmetic range"1..9 +2"        ("lo..hi" alone steps by +1)
//
// Every malformed line fails loudly with "<source>:<line>: ..." so specs
// are debuggable without reading this code.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cobra::scenario {

/// All scenario-subsystem errors (parse, plan, registry, journal) throw
/// this; messages carry source/line context where available.
struct SpecError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One `key = value` line; `line` is 1-based in the source (0 for entries
/// added programmatically via ScenarioSpec::set).
struct SpecEntry {
  std::string key;
  std::string value;
  std::size_t line = 0;
};

/// One `[name]` section with its entries in declaration order (sweep-axis
/// ordering is derived from this order, so it is preserved).
struct SpecSection {
  std::string name;
  std::size_t line = 0;
  std::vector<SpecEntry> entries;

  const SpecEntry* find(std::string_view key) const;
};

class ScenarioSpec {
 public:
  /// Parses spec text from a stream; `source` names it in error messages.
  static ScenarioSpec parse(std::istream& is, std::string source = "<spec>");
  static ScenarioSpec parse_string(std::string_view text,
                                   std::string source = "<string>");
  /// Opens and parses a file; throws SpecError if unreadable.
  static ScenarioSpec load(const std::string& path);

  /// Programmatic construction (used by the thin-wrapper exp binaries):
  /// creates the section on demand and overwrites an existing key.
  void set(std::string_view section, std::string_view key, std::string value);

  /// Renders the spec back to its plain-text form (sections and entries in
  /// their current order). render() of a parse of a render is the identity,
  /// so a plan built from the rendered text is the plan built from this
  /// spec — the distributed handshake ships campaigns this way and the
  /// worker re-plans and cross-checks the fingerprint.
  std::string render() const;

  const SpecSection* section(std::string_view name) const;
  const std::vector<SpecSection>& sections() const { return sections_; }
  const std::string& source() const { return source_; }

  bool has(std::string_view section, std::string_view key) const;

  /// Typed lookups with defaults. Malformed numbers throw SpecError citing
  /// the entry's line.
  std::string get(std::string_view section, std::string_view key,
                  std::string_view fallback) const;
  std::int64_t get_int(std::string_view section, std::string_view key,
                       std::int64_t fallback) const;
  double get_double(std::string_view section, std::string_view key,
                    double fallback) const;

  /// Required lookup; throws SpecError naming section/key when absent.
  std::string require(std::string_view section, std::string_view key) const;

 private:
  SpecSection& section_for_write(std::string_view name);

  std::string source_ = "<spec>";
  std::vector<SpecSection> sections_;
};

/// Expands a sweep expression (see file comment) into its value list, in
/// sweep order. A plain scalar yields a single-element list. Throws
/// SpecError on malformed ranges; `context` prefixes the message.
std::vector<std::string> expand_values(const std::string& value,
                                       const std::string& context = "value");

/// Strict full-consumption integer parse shared by every scenario number
/// site (spec getters, registry params, seed values) so the grammar stays
/// consistent. Returns false on malformed/partial input.
bool parse_spec_int(std::string_view text, std::int64_t& value);

/// Strict full-consumption double parse (same sharing rationale).
bool parse_spec_double(const std::string& text, double& value);

}  // namespace cobra::scenario
