// SPDX-License-Identifier: MIT
//
// Single-flight graph instance cache for campaign execution.
//
// Jobs sharing a (canonical graph params, seed axis) key share one
// deterministic instance. The cache is *single-flight*: when several
// worker threads miss on the same key concurrently, exactly one performs
// the build while the rest block on a shared future — previously each
// concurrent miss built the full instance and all but one were thrown
// away, which at n=2^22 wasted seconds of work and transient gigabytes
// per extra worker. A use count registered up front (expect) releases the
// instance as soon as its last job finishes, so large sweeps don't hold
// every instance until the campaign ends.
//
// The cache also records per-key build seconds, which the campaign runner
// surfaces as journal notes (see campaign.cpp) so overnight campaigns can
// be audited for where their wall-clock went.
#pragma once

#include <atomic>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "graph/graph.hpp"
#include "scenario/campaign.hpp"

namespace cobra::scenario {

class GraphCache {
 public:
  /// `build` constructs the deterministic instance for a missed job; it
  /// runs on whichever worker thread loses the insert race last opened
  /// the key (exactly one call per cached key lifetime).
  explicit GraphCache(std::function<Graph(const JobSpec&)> build);

  /// Cache key: canonical graph params + seed axis (the inputs the
  /// deterministic graph seed is derived from).
  static std::string key_for(const JobSpec& job);

  /// Registers one future acquire for the job's key; release() drops the
  /// instance when the count reaches zero.
  void expect(const JobSpec& job);

  struct Acquired {
    std::shared_ptr<const Graph> graph;
    /// >= 0 only on the call that actually performed the build (its
    /// duration); -1 for cache hits and single-flight waiters.
    double built_seconds = -1.0;
  };

  /// Returns the shared instance for the job's key, building it
  /// single-flight on miss. A failing build propagates its exception to
  /// the builder call and every waiter, and clears the key so a later
  /// acquire may retry.
  Acquired acquire(const JobSpec& job);

  /// Drops one registered use; the last release evicts the instance.
  void release(const JobSpec& job);

  /// Number of builds actually performed — the single-flight regression
  /// tests assert this stays at one per key under contention.
  std::size_t builds() const noexcept {
    return builds_.load(std::memory_order_relaxed);
  }

  /// Storage footprint of the currently cached instances, split by where
  /// the bytes live: `resident` counts owned arrays competing for RAM,
  /// `mapped` counts file-backed views (mmap-loaded .cgr graphs). The
  /// campaign/dist runners report these so an out-of-core sweep can prove
  /// its working set stayed borrowed.
  struct Usage {
    std::uint64_t resident_bytes = 0;
    std::uint64_t mapped_bytes = 0;
    std::size_t graphs = 0;
  };
  Usage usage();

 private:
  using Future = std::shared_future<std::shared_ptr<const Graph>>;

  std::function<Graph(const JobSpec&)> build_;
  std::mutex mutex_;
  std::map<std::string, Future> cache_;
  std::map<std::string, std::size_t> uses_;
  std::atomic<std::size_t> builds_{0};
};

}  // namespace cobra::scenario
