// SPDX-License-Identifier: MIT
//
// Campaign telemetry configuration and glue: the `[telemetry]` scenario
// section (and the scenario_runner --trace/--progress/--status/--rounds
// flags) resolve into a TelemetryConfig carried on the CampaignPlan, and
// run_campaign instantiates a CampaignTelemetry bundle from it — the
// sharded metrics registry, the Chrome-trace collector, the rounds sink,
// and the live progress reporter, all from src/obs/.
//
// Out-of-band contract (CI-enforced): telemetry never participates in
// the campaign fingerprint, the journal result frames, or the JSONL/CSV
// sinks. A spec with a [telemetry] section plans to the same fingerprint
// as one without, resumes against the same journal, and produces
// byte-identical result files — telemetry only *adds* artifacts
// (status.json, trace JSON, rounds JSONL, heartbeat lines).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/rounds.hpp"
#include "obs/trace.hpp"

namespace cobra::scenario {

/// Resolved telemetry switches. Paths may be empty with the feature
/// enabled — resolve_paths() derives `<stem>.status.json` /
/// `<stem>.trace.json` / `<stem>.rounds.jsonl` defaults.
struct TelemetryConfig {
  /// Heartbeat + status rewrite interval in seconds; 0 = no reporter.
  double progress_interval = 0.0;
  bool status = false;   ///< write status.json (implied by progress > 0)
  bool trace = false;    ///< collect spans, write Chrome trace JSON
  bool rounds = false;   ///< per-round process telemetry JSONL
  std::string status_path;
  std::string trace_path;
  std::string rounds_path;
  /// Keep every k-th round sample (terminal round always kept).
  std::size_t rounds_sample_every = 1;
  /// Record the first k trials of every job (bounds volume).
  std::size_t rounds_trials = 1;

  bool any() const {
    return progress_interval > 0.0 || status || trace || rounds;
  }
  /// Fills empty paths from the output stem.
  void resolve_paths(const std::string& stem);
  /// Comma-joined enabled sink names ("progress,status,trace,rounds"),
  /// "none" when off — the --dry-run per-job annotation.
  std::string sinks_description() const;
};

/// Parses a sink toggle value: "0" = off, "1" = on with a derived path,
/// anything else = on with that explicit path. Shared by the [telemetry]
/// section planner and the scenario_runner flags.
void parse_telemetry_sink(const std::string& value, bool& enabled,
                          std::string& path);

/// Rough resident bytes of the telemetry layer for `threads` workers and
/// a per-trial round budget — what --dry-run folds into its memory
/// lines. Deliberately an upper-ish estimate: metrics shards + trace
/// reserve + one rounds buffer per worker.
std::uint64_t telemetry_buffer_bytes(const TelemetryConfig& config,
                                     std::size_t threads,
                                     std::size_t round_limit);

/// The per-run telemetry bundle. Everything is optional inside; a null
/// CampaignTelemetry pointer in the campaign runner means the legacy
/// zero-overhead path.
class CampaignTelemetry {
 public:
  explicit CampaignTelemetry(const TelemetryConfig& config);

  const TelemetryConfig& config() const noexcept { return config_; }

  obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  /// nullptr when --trace is off — TraceSpan against nullptr is a no-op.
  obs::TraceCollector* trace() noexcept { return trace_.get(); }
  /// nullptr when rounds telemetry is off.
  obs::RoundsSink* rounds() noexcept { return rounds_.get(); }

  // ---- campaign-level metric handles (registered in the constructor,
  // before any worker shard exists) ----
  obs::CounterId jobs_done;
  obs::CounterId trials_done;
  obs::CounterId trials_failed;
  obs::CounterId graph_builds;
  obs::HistogramId job_seconds;        ///< base 1us
  obs::HistogramId trial_rounds;       ///< base 1 (count-valued)
  obs::HistogramId graph_build_seconds;

  /// Writes the trace file if tracing is on; returns false only on an
  /// enabled-but-failed write.
  bool write_trace() const;

 private:
  TelemetryConfig config_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::TraceCollector> trace_;
  std::unique_ptr<obs::RoundsSink> rounds_;
};

}  // namespace cobra::scenario
