// SPDX-License-Identifier: MIT
#include "scenario/graph_cache.hpp"

#include <chrono>
#include <utility>

#include "scenario/registry.hpp"
#include "util/stopwatch.hpp"

namespace cobra::scenario {

GraphCache::GraphCache(std::function<Graph(const JobSpec&)> build)
    : build_(std::move(build)) {}

std::string GraphCache::key_for(const JobSpec& job) {
  return canonical_params(job.graph) + "#" + std::to_string(job.seed_index);
}

void GraphCache::expect(const JobSpec& job) {
  std::lock_guard lock(mutex_);
  ++uses_[key_for(job)];
}

GraphCache::Acquired GraphCache::acquire(const JobSpec& job) {
  const std::string key = key_for(job);
  std::promise<std::shared_ptr<const Graph>> promise;
  Future future;
  bool leader = false;
  {
    std::lock_guard lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      future = it->second;
    } else {
      leader = true;
      future = promise.get_future().share();
      cache_.emplace(key, future);
    }
  }
  if (!leader) {
    // Single-flight waiter: blocks until the leader finishes; rethrows the
    // leader's exception if the build failed.
    return {future.get(), -1.0};
  }
  Stopwatch watch;
  try {
    auto built = std::make_shared<const Graph>(build_(job));
    const double seconds = watch.seconds();
    builds_.fetch_add(1, std::memory_order_relaxed);
    promise.set_value(std::move(built));
    return {future.get(), seconds};
  } catch (...) {
    // Clear the key first so a later acquire can retry, then fail every
    // current waiter (they hold the future already).
    {
      std::lock_guard lock(mutex_);
      cache_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

void GraphCache::release(const JobSpec& job) {
  const std::string key = key_for(job);
  std::lock_guard lock(mutex_);
  const auto it = uses_.find(key);
  if (it != uses_.end() && --it->second == 0) {
    uses_.erase(it);
    cache_.erase(key);
  }
}

GraphCache::Usage GraphCache::usage() {
  Usage usage;
  std::lock_guard lock(mutex_);
  for (const auto& [key, future] : cache_) {
    // Only instances whose build already finished: a single-flight future
    // still in flight would block this accounting call.
    if (future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      continue;
    }
    std::shared_ptr<const Graph> graph;
    try {
      graph = future.get();
    } catch (...) {
      continue;  // failed build — the key is being cleared by its leader
    }
    if (graph == nullptr) continue;
    usage.resident_bytes += graph->resident_bytes();
    usage.mapped_bytes += graph->mapped_bytes();
    ++usage.graphs;
  }
  return usage;
}

}  // namespace cobra::scenario
