// SPDX-License-Identifier: MIT
#include "scenario/spec.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

namespace cobra::scenario {

namespace {

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         (text.back() == ' ' || text.back() == '\t' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

[[noreturn]] void fail_at(const std::string& source, std::size_t line,
                          const std::string& message) {
  throw SpecError(source + ":" + std::to_string(line) + ": " + message);
}

std::int64_t parse_int(const std::string& source, std::size_t line,
                       std::string_view text, std::string_view what) {
  std::int64_t value = 0;
  if (!parse_spec_int(text, value)) {
    fail_at(source, line,
            std::string(what) + " expects an integer, got '" +
                std::string(text) + "'");
  }
  return value;
}

}  // namespace

bool parse_spec_int(std::string_view text, std::int64_t& value) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool parse_spec_double(const std::string& text, double& value) {
  try {
    std::size_t used = 0;
    value = std::stod(text, &used);
    return used == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

const SpecEntry* SpecSection::find(std::string_view key) const {
  for (const auto& entry : entries) {
    if (entry.key == key) return &entry;
  }
  return nullptr;
}

ScenarioSpec ScenarioSpec::parse(std::istream& is, std::string source) {
  ScenarioSpec spec;
  spec.source_ = std::move(source);
  std::string raw;
  std::size_t line_no = 0;
  SpecSection* current = nullptr;
  while (std::getline(is, raw)) {
    ++line_no;
    // Strip comments ('#' anywhere) before trimming.
    if (const auto hash = raw.find('#'); hash != std::string::npos) {
      raw.erase(hash);
    }
    const std::string_view line = trim(raw);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        fail_at(spec.source_, line_no, "unterminated section header");
      }
      const std::string_view name = trim(line.substr(1, line.size() - 2));
      if (name.empty()) {
        fail_at(spec.source_, line_no, "empty section name");
      }
      if (spec.section(name) != nullptr) {
        fail_at(spec.source_, line_no,
                "duplicate section [" + std::string(name) + "]");
      }
      spec.sections_.push_back({std::string(name), line_no, {}});
      current = &spec.sections_.back();
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      fail_at(spec.source_, line_no,
              "expected 'key = value' or '[section]', got '" +
                  std::string(line) + "'");
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) {
      fail_at(spec.source_, line_no, "empty key before '='");
    }
    if (current == nullptr) {
      fail_at(spec.source_, line_no,
              "'" + std::string(key) + "' appears before any [section]");
    }
    if (current->find(key) != nullptr) {
      fail_at(spec.source_, line_no,
              "duplicate key '" + std::string(key) + "' in [" + current->name +
                  "]");
    }
    current->entries.push_back(
        {std::string(key), std::string(value), line_no});
  }
  return spec;
}

ScenarioSpec ScenarioSpec::parse_string(std::string_view text,
                                        std::string source) {
  std::istringstream is{std::string(text)};
  return parse(is, std::move(source));
}

ScenarioSpec ScenarioSpec::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw SpecError("cannot open scenario spec '" + path + "'");
  }
  return parse(in, path);
}

void ScenarioSpec::set(std::string_view section, std::string_view key,
                       std::string value) {
  SpecSection& target = section_for_write(section);
  for (auto& entry : target.entries) {
    if (entry.key == key) {
      entry.value = std::move(value);
      return;
    }
  }
  target.entries.push_back({std::string(key), std::move(value), 0});
}

std::string ScenarioSpec::render() const {
  std::string out;
  for (const auto& sec : sections_) {
    if (!out.empty()) out += '\n';
    out += '[';
    out += sec.name;
    out += "]\n";
    for (const auto& entry : sec.entries) {
      out += entry.key;
      out += " = ";
      out += entry.value;
      out += '\n';
    }
  }
  return out;
}

const SpecSection* ScenarioSpec::section(std::string_view name) const {
  for (const auto& sec : sections_) {
    if (sec.name == name) return &sec;
  }
  return nullptr;
}

SpecSection& ScenarioSpec::section_for_write(std::string_view name) {
  for (auto& sec : sections_) {
    if (sec.name == name) return sec;
  }
  sections_.push_back({std::string(name), 0, {}});
  return sections_.back();
}

bool ScenarioSpec::has(std::string_view section_name,
                       std::string_view key) const {
  const SpecSection* sec = section(section_name);
  return sec != nullptr && sec->find(key) != nullptr;
}

std::string ScenarioSpec::get(std::string_view section_name,
                              std::string_view key,
                              std::string_view fallback) const {
  const SpecSection* sec = section(section_name);
  if (sec == nullptr) return std::string(fallback);
  const SpecEntry* entry = sec->find(key);
  return entry != nullptr ? entry->value : std::string(fallback);
}

std::int64_t ScenarioSpec::get_int(std::string_view section_name,
                                   std::string_view key,
                                   std::int64_t fallback) const {
  const SpecSection* sec = section(section_name);
  const SpecEntry* entry = sec != nullptr ? sec->find(key) : nullptr;
  if (entry == nullptr) return fallback;
  return parse_int(source_, entry->line, entry->value,
                   "[" + std::string(section_name) + "] " + std::string(key));
}

double ScenarioSpec::get_double(std::string_view section_name,
                                std::string_view key, double fallback) const {
  const SpecSection* sec = section(section_name);
  const SpecEntry* entry = sec != nullptr ? sec->find(key) : nullptr;
  if (entry == nullptr) return fallback;
  double value = 0.0;
  if (!parse_spec_double(entry->value, value)) {
    fail_at(source_, entry->line,
            "[" + std::string(section_name) + "] " + std::string(key) +
                " expects a number, got '" + entry->value + "'");
  }
  return value;
}

std::string ScenarioSpec::require(std::string_view section_name,
                                  std::string_view key) const {
  const SpecSection* sec = section(section_name);
  if (sec == nullptr) {
    throw SpecError(source_ + ": missing required section [" +
                    std::string(section_name) + "]");
  }
  const SpecEntry* entry = sec->find(key);
  if (entry == nullptr) {
    throw SpecError(source_ + ": [" + std::string(section_name) +
                    "] is missing required key '" + std::string(key) + "'");
  }
  return entry->value;
}

std::vector<std::string> expand_values(const std::string& value,
                                       const std::string& context) {
  std::vector<std::string> out;
  // Comma list: each element taken verbatim (no nested ranges).
  if (value.find(',') != std::string::npos) {
    std::size_t begin = 0;
    while (begin <= value.size()) {
      const std::size_t comma = value.find(',', begin);
      const std::size_t end = comma == std::string::npos ? value.size() : comma;
      const std::string item{trim(std::string_view(value).substr(
          begin, end - begin))};
      if (item.empty()) {
        throw SpecError(context + ": empty element in list '" + value + "'");
      }
      out.push_back(item);
      if (comma == std::string::npos) break;
      begin = comma + 1;
    }
    return out;
  }
  const std::size_t dots = value.find("..");
  if (dots == std::string::npos) {
    out.push_back(std::string(trim(value)));
    return out;
  }
  // Range "lo..hi" with optional step suffix "*m" (geometric) or "+s"
  // (arithmetic, the default with s = 1).
  const auto parse_endpoint = [&](std::string_view text,
                                  std::string_view what) {
    std::int64_t v = 0;
    if (!parse_spec_int(trim(text), v)) {
      throw SpecError(context + ": range " + std::string(what) +
                      " must be an integer, got '" + std::string(trim(text)) +
                      "' in '" + value + "'");
    }
    return v;
  };
  const std::string_view whole(value);
  const std::int64_t lo = parse_endpoint(whole.substr(0, dots), "start");
  std::string_view rest = trim(whole.substr(dots + 2));
  bool geometric = false;
  std::int64_t step = 1;
  const std::size_t op = rest.find_first_of("*+");
  if (op != std::string_view::npos) {
    geometric = rest[op] == '*';
    step = parse_endpoint(rest.substr(op + 1), "step");
    rest = trim(rest.substr(0, op));
  }
  const std::int64_t hi = parse_endpoint(rest, "end");
  if (lo > hi) {
    throw SpecError(context + ": range start exceeds end in '" + value + "'");
  }
  constexpr std::int64_t kMaxEndpoint = 1000000000000000;  // 1e15
  if (lo < -kMaxEndpoint || hi > kMaxEndpoint || step > kMaxEndpoint) {
    throw SpecError(context + ": range endpoints/step must stay within "
                    "+-1e15 in '" + value + "'");
  }
  if (geometric && (step < 2 || lo < 1)) {
    throw SpecError(context + ": geometric range needs factor >= 2 and " +
                    "start >= 1 in '" + value + "'");
  }
  if (!geometric && step < 1) {
    throw SpecError(context + ": arithmetic range needs step >= 1 in '" +
                    value + "'");
  }
  constexpr std::size_t kMaxAxis = 10000;
  for (std::int64_t v = lo;;) {
    out.push_back(std::to_string(v));
    if (out.size() > kMaxAxis) {
      throw SpecError(context + ": range '" + value + "' expands past " +
                      std::to_string(kMaxAxis) + " values");
    }
    // Overflow-safe advance: stop when the next step would pass hi (the
    // division/subtraction forms cannot wrap, unlike v*step / v+step).
    if (geometric ? v > hi / step : v > hi - step) break;
    v = geometric ? v * step : v + step;
  }
  return out;
}

}  // namespace cobra::scenario
