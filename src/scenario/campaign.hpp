// SPDX-License-Identifier: MIT
//
// Campaign planning and execution: turns a parsed ScenarioSpec into a
// deterministic job list (grid expansion over graph / process / seed
// axes), shards it across the thread pool, streams per-trial results into
// the stats/ online summaries, and checkpoints every finished job into an
// append-only journal so a killed campaign resumes where it left off.
//
// Determinism contract: each job's result is a pure function of
// (base_seed, job index) — graphs are seeded from (base_seed, seed axis,
// canonical graph params) and trial t of job j draws from
// Rng::for_trial(mix(base_seed, j), t). Results are therefore identical
// whatever the thread count or interruption pattern, and the final JSONL /
// CSV files are byte-identical between an interrupted-and-resumed campaign
// and an uninterrupted one (tested in tests/scenario_test.cpp).
//
// Grid expansion: every multi-valued key (see expand_values in spec.hpp)
// in [graph] or [process] becomes a sweep axis, plus the optional
// `[campaign] seeds` axis. Axis nesting is: seeds slowest, then [graph]
// keys in declaration order, then [process] keys, last key fastest.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "scenario/telemetry.hpp"
#include "stats/online.hpp"
#include "stats/summary.hpp"

namespace cobra::scenario {

/// One fully resolved grid point.
struct JobSpec {
  std::size_t index = 0;        ///< position in the expanded grid
  std::uint64_t seed_index = 0; ///< value of the seeds axis
  ParamMap graph;               ///< scalar graph params incl. "family"
  ParamMap process;             ///< scalar process params incl. "name"
  /// Scalar [faults] params (core/faults.hpp keys); empty = no fault
  /// model, the byte-identical legacy path.
  ParamMap faults;
};

struct CampaignPlan {
  std::string name = "campaign";
  std::size_t trials = 16;
  std::uint64_t base_seed = 20260612;
  std::size_t threads = 0;  ///< 0 = serial execution
  std::string output;       ///< sink/journal stem; empty = in-memory only
  std::vector<JobSpec> jobs;
  /// Hash of (name, trials, base_seed, every job); a resume against a
  /// journal written by a different plan fails loudly. Deliberately
  /// excludes `telemetry` and `batch` — observability and the execution
  /// engine are out of band, so toggling them must neither invalidate
  /// journals nor perturb results.
  std::uint64_t fingerprint = 0;
  /// Parsed [telemetry] section (scenario_runner's --trace/--progress/
  /// --status/--rounds flags override it after planning).
  TelemetryConfig telemetry;
  /// [engine] batch width for the trial loop (1 = scalar). Like telemetry
  /// this is deliberately fingerprint-neutral: the batched engine's
  /// per-trial results are bitwise-identical to the scalar path (the
  /// sim/batched.hpp contract), so journals written at any batch resume
  /// under any other and the sinks stay byte-identical.
  std::size_t batch = 1;
};

/// Expands the spec into a plan. Throws SpecError (with line numbers where
/// available) on unknown sections, unknown families/processes, malformed
/// sweeps, or an empty grid.
CampaignPlan plan_campaign(const ScenarioSpec& spec);

/// Aggregated result of one job's trials.
struct JobResult {
  std::size_t trials = 0;
  std::size_t failed = 0;     ///< trials that did not complete
  Summary rounds;             ///< over completed trials (count 0 if none)
  Summary transmissions;
  std::string graph_name;     ///< generator-assigned instance name
  // ---- fault-layer aggregates (faulty == the job ran under a [faults]
  // section; all zero otherwise and absent from the sinks/journal) ----
  bool faulty = false;
  Summary pdr;     ///< delivered / tx per completed trial (0 when tx == 0)
  Summary energy;  ///< total energy per completed trial (FaultOptions units)
  std::uint64_t delivered = 0;  ///< summed over ALL trials, failed included
  std::uint64_t dropped = 0;    ///< lost to channel drop, all trials
  std::uint64_t blocked = 0;    ///< receiver down/asleep, all trials
};

struct CampaignOptions {
  /// SIZE_MAX = use plan.threads; otherwise overrides (0 = serial).
  std::size_t threads = static_cast<std::size_t>(-1);
  /// Overrides plan.output when non-empty.
  std::string output;
  /// Pick up a matching journal when present (mismatch throws); false
  /// starts over, truncating any existing journal.
  bool resume = true;
  /// Stop cleanly after this many newly executed jobs (0 = unlimited) —
  /// the checkpoint/resume test hook and the CLI's --max-jobs.
  std::size_t max_jobs = 0;
  /// Per-job progress lines (nullptr = silent).
  std::ostream* progress = nullptr;
  /// Stream for the telemetry heartbeat when the plan enables a progress
  /// interval; nullptr = stderr. Tests capture it here.
  std::ostream* telemetry_heartbeat = nullptr;
};

struct CampaignResult {
  /// Index-aligned with plan.jobs; nullopt for jobs not yet executed
  /// (only possible when max_jobs stopped the run early).
  std::vector<std::optional<JobResult>> jobs;
  std::size_t resumed = 0;   ///< jobs restored from the journal
  std::size_t executed = 0;  ///< jobs run by this invocation
  bool complete = false;     ///< every job has a result
  /// Campaign-wide streaming aggregate of completed-trial round counts
  /// (resumed jobs pooled via OnlineStats::from_moments).
  OnlineStats all_rounds;
};

/// Executes the plan. When an output stem is configured the journal is
/// updated after every job and, once complete, `<stem>.jsonl` and
/// `<stem>.csv` are (re)written deterministically.
CampaignResult run_campaign(const CampaignPlan& plan,
                            const CampaignOptions& options = {});

/// The deterministic graph instance for a job, rebuilt on demand (the
/// campaign runner caches these internally; thin-wrapper experiment
/// binaries use this to re-derive the instance for e.g. spectral reports).
std::shared_ptr<const Graph> build_job_graph(const CampaignPlan& plan,
                                             const JobSpec& job);

/// By-value variant for callers that manage their own cache (the dist
/// worker feeds this into a GraphCache builder).
Graph build_campaign_graph(const CampaignPlan& plan, const JobSpec& job);

/// Executes one job of the plan on an already-built graph instance — the
/// shard-scoped execution path the distributed worker drives. Identical to
/// what run_campaign does per job (same seeding, same fault wiring), so a
/// result computed remotely serializes byte-identically to a local one.
JobResult execute_campaign_job(const CampaignPlan& plan, const JobSpec& job,
                               const Graph& g);

/// Writes `<stem>.jsonl` / `<stem>.csv` for a complete result set, in job
/// order — deterministic and byte-identical however the results were
/// produced (single process, resume, or distributed merge). Every entry
/// must be present. Shared by run_campaign and the dist coordinator.
void write_campaign_sinks(const CampaignPlan& plan,
                          const std::vector<std::optional<JobResult>>& jobs,
                          const std::string& stem);

}  // namespace cobra::scenario
