// SPDX-License-Identifier: MIT
//
// Scenario registries: the graph-family factory (every family in
// src/graph/generators*.cpp plus external edge-list files) and the
// SpecError-translating veneer over the unified process factory
// (core/process_factory.hpp) — the process table itself lives with the
// processes, so the scenario engine, trial runner, and benches all read
// the same registry.
//
// Parameters arrive as strings straight from the spec; each factory
// validates its own keys and rejects unknown ones loudly (SpecError), so a
// typo in a scenario file names the bad key instead of being ignored.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/process.hpp"
#include "core/process_common.hpp"
#include "core/process_factory.hpp"
#include "graph/graph.hpp"
#include "rand/rng.hpp"
#include "scenario/spec.hpp"

namespace cobra::scenario {

/// Resolved scalar parameters in declaration order (order matters for
/// sweep-axis nesting; lookups are by key). Same shape the process
/// factory consumes.
using ParamMap = ProcessParams;

/// Value of `key`, or nullptr.
const std::string* find_param(const ParamMap& params, std::string_view key);

/// Deterministic canonical form "k1=v1,k2=v2" with keys sorted — the basis
/// for graph-cache keys, graph seeds, and campaign fingerprints.
std::string canonical_params(const ParamMap& params);

// ---- graph families ----

/// Registered family names, sorted.
std::vector<std::string> graph_families();
bool is_graph_family(std::string_view name);

/// True if `key` is a parameter the family accepts — the campaign planner
/// rejects typo'd spec keys up front (so --dry-run vets them) instead of
/// letting them surface as sweep axes that error mid-run.
bool graph_family_has_param(std::string_view family, std::string_view key);

/// Accepted parameter keys of `family`, in declaration order (empty for
/// an unknown family) — scenario_runner --list prints these.
std::vector<std::string> graph_family_param_keys(std::string_view family);

/// Builds the family named params["family"]; `rng` drives the random
/// families (deterministic families ignore it). Throws SpecError on an
/// unknown family, missing/malformed parameters, or unknown keys.
Graph build_graph(const ParamMap& params, Rng& rng);

/// Pre-build memory estimate for a resolved [graph] parameter set — what
/// scenario_runner --dry-run prints per job so an overnight campaign can
/// be sanity-checked against available RAM before launch. For random
/// families the edge count is the expectation; margulis reports its
/// template upper bound. family=file is known when the file is a .cgr
/// (the header is read — exact sizes); known=false for edge-list files
/// (size unknowable without parsing) and for malformed parameter values
/// (the actual run reports those as errors).
struct GraphMemoryEstimate {
  bool known = false;
  std::uint64_t n = 0;          ///< vertex count
  std::uint64_t endpoints = 0;  ///< 2m (adjacency entries)
  std::size_t offset_bytes = 0; ///< 4 or 8 — the width-adaptive selection
  std::uint64_t csr_bytes = 0;  ///< (n+1)*offset_bytes + endpoints*4
  /// Weight array bytes (endpoints*4 = 8m) when the job requests
  /// weight = uniform|exp, or loads a weighted file it keeps; 0 for
  /// unweighted jobs. Alias tables add endpoints*8 more when a process
  /// sets weighted=1 — scenario_runner --dry-run folds that in per job
  /// from the process params.
  std::uint64_t weight_bytes = 0;
  /// Portion of total_bytes() that is file-backed rather than resident:
  /// family=file with mmap=1 on a .cgr keeps the CSR (and any file-carried
  /// weights) as views over the mapping, so only total - mapped competes
  /// for RAM up front. Synthesized weights over a mapped graph are still
  /// owned, so they stay out of this number. 0 for in-core jobs.
  std::uint64_t mapped_bytes = 0;

  std::uint64_t total_bytes() const { return csr_bytes + weight_bytes; }
  std::uint64_t resident_bytes() const { return total_bytes() - mapped_bytes; }
};
GraphMemoryEstimate estimate_graph_memory(const ParamMap& params);

// ---- processes ----
//
// Thin veneer over the unified factory: identical semantics, but every
// failure surfaces as SpecError so campaign planning reports one error
// type. The returned processes are single-thread workspaces; drive one
// trial as process->run(rng, start) (see core/process.hpp).

/// Registered process names, sorted.
std::vector<std::string> process_names();
bool is_process_name(std::string_view name);

/// True if `key` is a parameter the process accepts (see
/// graph_family_has_param).
bool process_has_param(std::string_view name, std::string_view key);

/// Instantiates the process named params["name"] on `g`. Throws SpecError
/// on unknown names, malformed parameters, or unknown keys.
std::unique_ptr<Process> make_process(const Graph& g, const ParamMap& params);

}  // namespace cobra::scenario
