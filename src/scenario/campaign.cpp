// SPDX-License-Identifier: MIT
#include "scenario/campaign.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <ostream>

#include "core/faults.hpp"
#include "obs/progress.hpp"
#include "sim/batched.hpp"
#include "scenario/graph_cache.hpp"
#include "scenario/sink.hpp"
#include "sim/sweep.hpp"
#include "sim/thread_pool.hpp"
#include "stats/quantile.hpp"
#include "util/stopwatch.hpp"

namespace cobra::scenario {

namespace {

std::uint64_t fnv1a(std::string_view text,
                    std::uint64_t hash = 1469598103934665603ULL) {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// SplitMix-style combine, the same shape as Rng::for_trial's premix.
std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  SplitMix64 sm(a ^ (0x632be59bd9b4e019ULL * (b + 1)));
  return sm.next();
}

std::uint64_t graph_seed(const CampaignPlan& plan, const JobSpec& job) {
  return mix64(mix64(plan.base_seed, job.seed_index),
               fnv1a(canonical_params(job.graph)));
}

Graph build_graph_instance(const CampaignPlan& plan, const JobSpec& job) {
  Rng rng(graph_seed(plan, job));
  return build_graph(job.graph, rng);
}

struct Axis {
  int section;        ///< 0 = seeds, 1 = graph, 2 = process, 3 = faults
  std::size_t entry;  ///< entry position within the section
  std::vector<std::string> values;
};

Summary summary_from(const OnlineStats& stream, std::vector<double>& values) {
  Summary summary;
  summary.count = stream.count();
  summary.mean = stream.mean();
  summary.stddev = stream.stddev();
  summary.min = stream.min();
  summary.max = stream.max();
  summary.median = quantile(values, 0.5);
  summary.p90 = quantile(values, 0.9);
  summary.p99 = quantile(values, 0.99);
  return summary;
}

JobResult execute_job(const CampaignPlan& plan, const JobSpec& job,
                      const Graph& g, CampaignTelemetry* telemetry) {
  obs::TraceSpan job_span(telemetry != nullptr ? telemetry->trace() : nullptr,
                          "job", "job " + std::to_string(job.index));
  // Qualified: the enclosing cobra:: namespace has the factory overload.
  const auto process = scenario::make_process(g, job.process);
  // Optional fault layer: built per job (cheap — the model is a validated
  // options holder) and attached before any reset, so every trial of the
  // job runs the fault-aware rounds. With no [faults] section the process
  // is never touched and the legacy path stays byte-identical.
  std::unique_ptr<FaultModel> fault_model;
  if (!job.faults.empty()) {
    fault_model = std::make_unique<FaultModel>(
        g.num_vertices(), parse_fault_options(job.faults));
    process->set_fault_model(fault_model.get());
  }
  const auto starts = spreadable_starts(g);
  const std::uint64_t job_seed = mix64(plan.base_seed, job.index);
  JobResult result;
  result.trials = plan.trials;
  result.graph_name = g.name();
  result.faulty = fault_model != nullptr;
  OnlineStats rounds_stream;
  OnlineStats tx_stream;
  OnlineStats pdr_stream;
  OnlineStats energy_stream;
  std::vector<double> rounds_values;
  std::vector<double> tx_values;
  std::vector<double> pdr_values;
  std::vector<double> energy_values;
  rounds_values.reserve(plan.trials);
  tx_values.reserve(plan.trials);
  if (result.faulty) {
    pdr_values.reserve(plan.trials);
    energy_values.reserve(plan.trials);
  }
  // Per-round telemetry: record the first rounds_trials trials of the job
  // through the out-of-band observer hook (results are independent of
  // attached observers — the PR-3 contract, re-verified in obs_test).
  std::unique_ptr<obs::RoundRecorder> recorder;
  std::size_t recorded_trials = 0;
  if (telemetry != nullptr && telemetry->rounds() != nullptr) {
    recorder = std::make_unique<obs::RoundRecorder>(
        telemetry->config().rounds_sample_every);
    recorded_trials =
        std::min(telemetry->config().rounds_trials, plan.trials);
  }
  obs::TraceSpan trials_span(
      telemetry != nullptr ? telemetry->trace() : nullptr, "trials");
  // Trial t's result is consumed here regardless of which engine produced
  // it; the streams see trials strictly in t order either way.
  const auto consume = [&](const SpreadResult& trial) {
    if (telemetry != nullptr) {
      telemetry->metrics().add(telemetry->trials_done);
      telemetry->metrics().observe(telemetry->trial_rounds,
                                   static_cast<double>(trial.rounds));
      if (!trial.completed) {
        telemetry->metrics().add(telemetry->trials_failed);
      }
    }
    if (result.faulty) {
      // Raw delivery totals cover every trial, failed ones included —
      // exactly what was spent, not just what succeeded.
      result.delivered += trial.delivered;
      result.dropped += trial.dropped_channel;
      result.blocked += trial.blocked_receiver;
    }
    if (!trial.completed) {
      ++result.failed;
      return;
    }
    const auto rounds = static_cast<double>(trial.rounds);
    const auto tx = static_cast<double>(trial.total_transmissions);
    rounds_stream.add(rounds);
    tx_stream.add(tx);
    rounds_values.push_back(rounds);
    tx_values.push_back(tx);
    if (result.faulty) {
      // Packet-delivery ratio; a trial that sent nothing (e.g. always
      // down) has no deliveries, so 0 is the honest PDR.
      const double pdr =
          trial.total_transmissions > 0
              ? static_cast<double>(trial.delivered) /
                    static_cast<double>(trial.total_transmissions)
              : 0.0;
      pdr_stream.add(pdr);
      energy_stream.add(trial.energy);
      pdr_values.push_back(pdr);
      energy_values.push_back(trial.energy);
    }
  };
  const auto run_scalar = [&](std::size_t t) {
    const bool record_rounds = t < recorded_trials;
    process->set_observer(record_rounds ? recorder.get() : nullptr);
    const SpreadResult trial = process->run(Rng::for_trial(job_seed, t),
                                            starts[t % starts.size()]);
    if (record_rounds) {
      telemetry->rounds()->append_trial(job.index, t, recorder->samples());
      if (t + 1 == recorded_trials) process->set_observer(nullptr);
    }
    consume(trial);
  };
  // [engine] batch >= 2: the lockstep engine runs the bulk of the trials.
  // Observer-recorded trials stay scalar (round observers hook the scalar
  // step path), as does any process/fault combination without a batched
  // engine — the factory's nullptr covers both the fault layer and
  // unsupported processes, so this degrades to exactly the loop above.
  // Either way every per-trial SpreadResult is bitwise-identical, so the
  // aggregates, journal, and sinks cannot tell the engines apart.
  std::unique_ptr<BatchedEngine> engine;
  if (plan.batch >= 2) engine = make_batched_engine(*process, plan.batch);
  if (engine == nullptr) {
    for (std::size_t t = 0; t < plan.trials; ++t) run_scalar(t);
  } else {
    for (std::size_t t = 0; t < recorded_trials; ++t) run_scalar(t);
    std::vector<SpreadResult> block(plan.batch);
    for (std::size_t first = recorded_trials; first < plan.trials;
         first += plan.batch) {
      const std::size_t count = std::min(plan.batch, plan.trials - first);
      engine->run_block(job_seed, first, count, starts, block.data());
      for (std::size_t i = 0; i < count; ++i) consume(block[i]);
    }
  }
  if (!rounds_values.empty()) {
    result.rounds = summary_from(rounds_stream, rounds_values);
    result.transmissions = summary_from(tx_stream, tx_values);
    if (result.faulty) {
      result.pdr = summary_from(pdr_stream, pdr_values);
      result.energy = summary_from(energy_stream, energy_values);
    }
  }
  return result;
}

std::uint64_t parse_seed_value(const std::string& text) {
  std::int64_t value = 0;
  if (!parse_spec_int(text, value) || value < 0) {
    throw SpecError("[campaign] seeds expects non-negative integers, got '" +
                    text + "'");
  }
  return static_cast<std::uint64_t>(value);
}

}  // namespace

CampaignPlan plan_campaign(const ScenarioSpec& spec) {
  CampaignPlan plan;
  // Loudly reject unknown sections and campaign keys — silent typos are
  // how experiment campaigns go subtly wrong.
  for (const auto& section : spec.sections()) {
    if (section.name != "campaign" && section.name != "graph" &&
        section.name != "process" && section.name != "faults" &&
        section.name != "telemetry" && section.name != "engine") {
      throw SpecError(
          spec.source() + ":" + std::to_string(section.line) +
          ": unknown section [" + section.name +
          "] (expected campaign/graph/process/faults/telemetry/engine)");
    }
  }
  if (const SpecSection* campaign = spec.section("campaign")) {
    for (const auto& entry : campaign->entries) {
      if (entry.key != "name" && entry.key != "trials" &&
          entry.key != "base_seed" && entry.key != "threads" &&
          entry.key != "output" && entry.key != "seeds") {
        throw SpecError(spec.source() + ":" + std::to_string(entry.line) +
                        ": unknown [campaign] key '" + entry.key + "'");
      }
    }
  }
  plan.name = spec.get("campaign", "name", "campaign");
  const std::int64_t trials = spec.get_int("campaign", "trials", 16);
  if (trials < 1) {
    throw SpecError(spec.source() + ": [campaign] trials must be >= 1");
  }
  plan.trials = static_cast<std::size_t>(trials);
  plan.base_seed =
      static_cast<std::uint64_t>(spec.get_int("campaign", "base_seed",
                                              20260612));
  const std::int64_t threads = spec.get_int("campaign", "threads", 0);
  if (threads < 0 || threads > 4096) {
    throw SpecError(spec.source() +
                    ": [campaign] threads must be in [0, 4096]");
  }
  plan.threads = static_cast<std::size_t>(threads);
  plan.output = spec.get("campaign", "output", "");

  const SpecSection* graph = spec.section("graph");
  if (graph == nullptr) {
    throw SpecError(spec.source() + ": missing required section [graph]");
  }
  const SpecSection* process = spec.section("process");
  if (process == nullptr) {
    throw SpecError(spec.source() + ": missing required section [process]");
  }

  // Validate the dispatch keys early, with line numbers.
  const SpecEntry* family = graph->find("family");
  if (family == nullptr) {
    throw SpecError(spec.source() + ":" + std::to_string(graph->line) +
                    ": [graph] needs 'family = <name>'");
  }
  if (!is_graph_family(family->value)) {
    throw SpecError(spec.source() + ":" + std::to_string(family->line) +
                    ": unknown graph family '" + family->value + "'");
  }
  const SpecEntry* process_name = process->find("name");
  if (process_name == nullptr) {
    throw SpecError(spec.source() + ":" + std::to_string(process->line) +
                    ": [process] needs 'name = <process>'");
  }
  // The process name itself may sweep ("name = cobra, push-pull, flood")
  // so one campaign compares protocols on the same graphs and fault
  // schedules; every swept name must be a known process.
  const std::vector<std::string> process_names =
      expand_values(process_name->value,
                    spec.source() + ":" +
                        std::to_string(process_name->line) +
                        ": [process] name");
  for (const std::string& name : process_names) {
    if (!is_process_name(name)) {
      throw SpecError(spec.source() + ":" +
                      std::to_string(process_name->line) +
                      ": unknown process '" + name + "'");
    }
  }

  // Reject typo'd parameter keys at plan time so --dry-run vets the whole
  // spec; a stray key would otherwise become a bogus sweep axis and only
  // error once the campaign executes.
  for (const auto& entry : graph->entries) {
    if (entry.key == "family") continue;
    if (!graph_family_has_param(family->value, entry.key)) {
      throw SpecError(spec.source() + ":" + std::to_string(entry.line) +
                      ": graph family '" + family->value +
                      "' has no parameter '" + entry.key + "'");
    }
  }
  for (const auto& entry : process->entries) {
    if (entry.key == "name") continue;
    // With a swept name, every other [process] key must be meaningful for
    // every process in the sweep — a key only some of them accept would
    // silently change the comparison.
    for (const std::string& name : process_names) {
      if (!process_has_param(name, entry.key)) {
        throw SpecError(spec.source() + ":" + std::to_string(entry.line) +
                        ": process '" + name + "' has no parameter '" +
                        entry.key + "'");
      }
    }
  }
  const SpecSection* faults = spec.section("faults");
  if (faults != nullptr) {
    for (const auto& entry : faults->entries) {
      if (!fault_has_param(entry.key)) {
        throw SpecError(spec.source() + ":" + std::to_string(entry.line) +
                        ": unknown [faults] key '" + entry.key +
                        "' (scenario_runner --list prints the accepted set)");
      }
    }
  }

  // [telemetry] configures observability sinks. Telemetry is out of band:
  // its keys never become sweep axes and never enter the fingerprint, so
  // adding/removing the section resumes against the same journal and
  // leaves the result sinks byte-identical (CI-enforced).
  if (const SpecSection* telemetry = spec.section("telemetry")) {
    for (const auto& entry : telemetry->entries) {
      const std::string where =
          spec.source() + ":" + std::to_string(entry.line) + ": [telemetry] ";
      if (entry.key == "progress") {
        double seconds = 0.0;
        if (!parse_spec_double(entry.value, seconds) || seconds < 0.0) {
          throw SpecError(where +
                          "progress expects an interval in seconds >= 0 "
                          "(0 = off), got '" + entry.value + "'");
        }
        plan.telemetry.progress_interval = seconds;
      } else if (entry.key == "status") {
        parse_telemetry_sink(entry.value, plan.telemetry.status,
                             plan.telemetry.status_path);
      } else if (entry.key == "trace") {
        parse_telemetry_sink(entry.value, plan.telemetry.trace,
                             plan.telemetry.trace_path);
      } else if (entry.key == "rounds") {
        parse_telemetry_sink(entry.value, plan.telemetry.rounds,
                             plan.telemetry.rounds_path);
      } else if (entry.key == "rounds_sample_every" ||
                 entry.key == "rounds_trials") {
        std::int64_t value = 0;
        if (!parse_spec_int(entry.value, value) || value < 1) {
          throw SpecError(where + entry.key + " expects an integer >= 1, "
                          "got '" + entry.value + "'");
        }
        (entry.key == "rounds_sample_every"
             ? plan.telemetry.rounds_sample_every
             : plan.telemetry.rounds_trials) =
            static_cast<std::size_t>(value);
      } else {
        throw SpecError(where + "has no key '" + entry.key +
                        "' (expected progress/status/trace/rounds/"
                        "rounds_sample_every/rounds_trials)");
      }
    }
  }

  // [engine] selects how the trial loop executes. Like [telemetry] it is
  // out of band: batching reschedules the trials but every per-trial
  // result is bitwise-identical to the scalar path (sim/batched.hpp's
  // seed-compatibility contract, enforced in tests/batched_test.cpp), so
  // its keys never sweep and never enter the fingerprint.
  if (const SpecSection* engine = spec.section("engine")) {
    for (const auto& entry : engine->entries) {
      const std::string where =
          spec.source() + ":" + std::to_string(entry.line) + ": [engine] ";
      if (entry.key == "batch") {
        std::int64_t value = 0;
        if (!parse_spec_int(entry.value, value) || value < 1 ||
            value > static_cast<std::int64_t>(kMaxBatch)) {
          throw SpecError(where + "batch expects an integer in [1, " +
                          std::to_string(kMaxBatch) + "], got '" +
                          entry.value + "'");
        }
        plan.batch = static_cast<std::size_t>(value);
      } else {
        throw SpecError(where + "has no key '" + entry.key +
                        "' (expected batch)");
      }
    }
  }

  // Sweep axes: seeds slowest, then [graph] keys in declaration order,
  // then [process] keys, then [faults] keys (last key fastest).
  std::vector<Axis> axes;
  axes.push_back({0, 0,
                  expand_values(spec.get("campaign", "seeds", "0"),
                                "[campaign] seeds")});
  const auto add_section_axes = [&axes, &spec](const SpecSection& section,
                                               int section_id) {
    for (std::size_t i = 0; i < section.entries.size(); ++i) {
      const SpecEntry& entry = section.entries[i];
      // The 'family' dispatch key and file paths never sweep (paths
      // legitimately contain '..'); the process 'name' does.
      if (entry.key == "family" || entry.key == "file") {
        axes.push_back({section_id, i, {entry.value}});
        continue;
      }
      axes.push_back({section_id, i,
                      expand_values(entry.value,
                                    spec.source() + ":" +
                                        std::to_string(entry.line) + ": [" +
                                        section.name + "] " + entry.key)});
    }
  };
  add_section_axes(*graph, 1);
  add_section_axes(*process, 2);
  if (faults != nullptr) add_section_axes(*faults, 3);

  std::size_t total = 1;
  constexpr std::size_t kMaxJobs = 200000;
  for (const Axis& axis : axes) {
    total *= axis.values.size();
    if (total > kMaxJobs) {
      throw SpecError(spec.source() + ": grid expands past " +
                      std::to_string(kMaxJobs) + " jobs");
    }
  }

  plan.jobs.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    JobSpec job;
    job.index = index;
    job.graph.resize(graph->entries.size());
    job.process.resize(process->entries.size());
    if (faults != nullptr) job.faults.resize(faults->entries.size());
    std::size_t residual = index;
    std::size_t stride = total;
    for (const Axis& axis : axes) {
      stride /= axis.values.size();
      const std::string& value = axis.values[residual / stride];
      residual %= stride;
      switch (axis.section) {
        case 0:
          job.seed_index = parse_seed_value(value);
          break;
        case 1:
          job.graph[axis.entry] = {graph->entries[axis.entry].key, value};
          break;
        case 2:
          job.process[axis.entry] = {process->entries[axis.entry].key, value};
          break;
        default:
          job.faults[axis.entry] = {faults->entries[axis.entry].key, value};
      }
    }
    // Vet every fault combination at plan time, so --dry-run (which only
    // plans) rejects malformed values before any compute is spent.
    if (!job.faults.empty()) {
      try {
        (void)parse_fault_options(job.faults);
      } catch (const std::invalid_argument& e) {
        throw SpecError(spec.source() + ": job " + std::to_string(index) +
                        ": [faults] " + e.what());
      }
    }
    plan.jobs.push_back(std::move(job));
  }

  // Fingerprint deliberately excludes [telemetry] and [engine]: both are
  // out of band (observability / execution strategy), so toggling them
  // must neither invalidate journals nor perturb results.
  std::uint64_t fp = fnv1a(plan.name);
  fp = fnv1a(std::to_string(plan.trials), fp);
  fp = fnv1a(std::to_string(plan.base_seed), fp);
  for (const JobSpec& job : plan.jobs) {
    fp = fnv1a(std::to_string(job.seed_index), fp);
    fp = fnv1a(canonical_params(job.graph), fp);
    fp = fnv1a(canonical_params(job.process), fp);
    // No [faults] canonicalises to "" — a no-op for fnv1a — so every
    // pre-fault-layer fingerprint (and journal) stays valid.
    fp = fnv1a(canonical_params(job.faults), fp);
  }
  plan.fingerprint = fp;
  return plan;
}

std::shared_ptr<const Graph> build_job_graph(const CampaignPlan& plan,
                                             const JobSpec& job) {
  return std::make_shared<const Graph>(build_graph_instance(plan, job));
}

Graph build_campaign_graph(const CampaignPlan& plan, const JobSpec& job) {
  return build_graph_instance(plan, job);
}

JobResult execute_campaign_job(const CampaignPlan& plan, const JobSpec& job,
                               const Graph& g) {
  return execute_job(plan, job, g, nullptr);
}

void write_campaign_sinks(const CampaignPlan& plan,
                          const std::vector<std::optional<JobResult>>& jobs,
                          const std::string& stem) {
  std::ofstream jsonl(stem + ".jsonl", std::ios::trunc);
  std::ofstream csv(stem + ".csv", std::ios::trunc);
  if (!jsonl || !csv) {
    throw SpecError("cannot write campaign outputs at stem '" + stem + "'");
  }
  const bool faulty =
      std::any_of(plan.jobs.begin(), plan.jobs.end(),
                  [](const JobSpec& j) { return !j.faults.empty(); });
  csv << csv_header(faulty) << '\n';
  for (const JobSpec& job : plan.jobs) {
    const JobResult& job_result = *jobs[job.index];
    jsonl << jsonl_record(plan, job, job_result) << '\n';
    csv << csv_row(plan, job, job_result) << '\n';
  }
}

CampaignResult run_campaign(const CampaignPlan& plan,
                            const CampaignOptions& options) {
  const std::size_t threads =
      options.threads == static_cast<std::size_t>(-1) ? plan.threads
                                                      : options.threads;
  const std::string stem =
      !options.output.empty() ? options.output : plan.output;

  // Telemetry is resolved against the effective stem; an in-memory
  // campaign (no stem) keeps only sinks with explicit paths.
  TelemetryConfig telemetry_config = plan.telemetry;
  if (!stem.empty()) {
    telemetry_config.resolve_paths(stem);
  } else {
    if (telemetry_config.status_path.empty()) telemetry_config.status = false;
    if (telemetry_config.trace_path.empty()) telemetry_config.trace = false;
    if (telemetry_config.rounds_path.empty()) telemetry_config.rounds = false;
  }
  std::unique_ptr<CampaignTelemetry> telemetry;
  if (telemetry_config.any()) {
    telemetry = std::make_unique<CampaignTelemetry>(telemetry_config);
  }
  obs::TraceCollector* trace =
      telemetry != nullptr ? telemetry->trace() : nullptr;
  Stopwatch campaign_watch;

  CampaignResult result;
  result.jobs.assign(plan.jobs.size(), std::nullopt);

  std::unique_ptr<Journal> journal;
  if (!stem.empty()) {
    obs::TraceSpan span(trace, "journal_restore");
    journal = std::make_unique<Journal>(stem + ".journal", plan,
                                        options.resume);
    for (const auto& [index, restored] : journal->restored()) {
      result.jobs[index] = restored;
    }
    result.resumed = journal->restored().size();
  }

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
    if (!result.jobs[i].has_value()) pending.push_back(i);
  }
  // --max-jobs: run only the first N pending jobs, then stop cleanly —
  // exactly what a kill at that point would leave behind.
  if (options.max_jobs != 0 && pending.size() > options.max_jobs) {
    pending.resize(options.max_jobs);
  }

  // Single-flight instance cache: concurrent misses on one key block on
  // the first builder instead of racing duplicate builds (graph_cache.hpp).
  // The trace span wraps only the losing-thread build (cache hits and
  // single-flight waiters record nothing).
  GraphCache cache([&plan, trace](const JobSpec& job) {
    obs::TraceSpan span(trace, "graph_build", GraphCache::key_for(job));
    return build_graph_instance(plan, job);
  });
  for (const std::size_t index : pending) cache.expect(plan.jobs[index]);

  std::mutex mutex;
  std::string first_error;
  bool errored = false;
  const std::size_t total = plan.jobs.size();
  const auto body = [&](std::size_t pending_index) {
    {
      std::lock_guard lock(mutex);
      if (errored) return;
    }
    const JobSpec& job = plan.jobs[pending[pending_index]];
    try {
      const GraphCache::Acquired acquired = cache.acquire(job);
      const auto& graph = acquired.graph;
      if (acquired.built_seconds >= 0.0) {
        // Build timing goes to the metrics registry (status.json's
        // graph_builds / graph_build_seconds) and, for journal-backed
        // campaigns, to the legacy note frame — same numbers, two sinks.
        if (telemetry != nullptr) {
          telemetry->metrics().add(telemetry->graph_builds);
          telemetry->metrics().observe(telemetry->graph_build_seconds,
                                       acquired.built_seconds);
        }
        if (journal) {
          std::lock_guard lock(mutex);
          journal->note("graph " + GraphCache::key_for(job) + " name=" +
                        graph->name() + " build_seconds=" +
                        format_double(acquired.built_seconds) +
                        (graph->is_mapped()
                             ? " mapped_bytes=" +
                                   std::to_string(graph->mapped_bytes())
                             : ""));
        }
      }
      Stopwatch job_watch;
      JobResult job_result = execute_job(plan, job, *graph, telemetry.get());
      cache.release(job);
      if (telemetry != nullptr) {
        telemetry->metrics().observe(telemetry->job_seconds,
                                     job_watch.seconds());
        telemetry->metrics().add(telemetry->jobs_done);
      }
      obs::TraceSpan journal_span(trace, "journal_append");
      std::lock_guard lock(mutex);
      if (journal) journal->append(job.index, job_result);
      if (options.progress != nullptr) {
        *options.progress << "[" << (result.resumed + result.executed + 1)
                          << "/" << total << "] job " << job.index << " "
                          << job_result.graph_name << " rounds mean="
                          << format_double(job_result.rounds.mean)
                          << " failed=" << job_result.failed << "\n";
      }
      result.jobs[job.index] = std::move(job_result);
      ++result.executed;
    } catch (const std::exception& e) {
      std::lock_guard lock(mutex);
      if (!errored) {
        errored = true;
        first_error = "job " + std::to_string(job.index) + ": " + e.what();
      }
    }
  };

  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) {
    pool = std::make_unique<ThreadPool>(threads);
    if (telemetry != nullptr) pool->enable_telemetry();
  }

  // The live reporter samples worker-owned relaxed cells and the merged
  // metrics shards; it never blocks the workers.
  std::unique_ptr<obs::ProgressReporter> reporter;
  if (telemetry != nullptr &&
      (telemetry_config.progress_interval > 0.0 || telemetry_config.status)) {
    obs::ProgressReporter::Options reporter_options;
    reporter_options.interval_seconds =
        telemetry_config.progress_interval > 0.0
            ? telemetry_config.progress_interval
            : 2.0;
    reporter_options.status_path = telemetry_config.status_path;
    if (telemetry_config.progress_interval > 0.0) {
      reporter_options.heartbeat = options.telemetry_heartbeat != nullptr
                                       ? options.telemetry_heartbeat
                                       : &std::cerr;
    }
    const std::size_t to_run = pending.size();
    const std::size_t resumed = result.resumed;
    CampaignTelemetry* t = telemetry.get();
    ThreadPool* pool_ptr = pool.get();
    const std::string campaign_name = plan.name;
    reporter = std::make_unique<obs::ProgressReporter>(
        reporter_options,
        [t, pool_ptr, total, to_run, resumed, campaign_name,
         &campaign_watch]() {
          obs::ProgressSnapshot s;
          s.campaign = campaign_name;
          s.jobs_total = total;
          const std::uint64_t executed = t->metrics().counter_value(t->jobs_done);
          s.jobs_done = resumed + static_cast<std::size_t>(executed);
          s.jobs_resumed = resumed;
          s.trials_done = t->metrics().counter_value(t->trials_done);
          s.graph_builds = t->metrics().counter_value(t->graph_builds);
          s.graph_build_seconds =
              t->metrics().histogram_value(t->graph_build_seconds).sum;
          s.elapsed_seconds = campaign_watch.seconds();
          if (s.elapsed_seconds > 0.0) {
            s.trials_per_sec =
                static_cast<double>(s.trials_done) / s.elapsed_seconds;
            if (executed > 0) {
              const double rate =
                  static_cast<double>(executed) / s.elapsed_seconds;
              s.eta_seconds =
                  static_cast<double>(to_run - std::min<std::size_t>(
                                                   to_run, executed)) /
                  rate;
            }
          }
          s.peak_rss_bytes = obs::peak_rss_bytes();
          if (pool_ptr != nullptr) {
            const auto workers = pool_ptr->telemetry();
            s.workers.reserve(workers.size());
            for (const auto& w : workers) {
              obs::ProgressSnapshot::Worker worker;
              worker.chunks = w.chunks;
              worker.busy_seconds = w.busy_seconds;
              worker.utilization =
                  s.elapsed_seconds > 0.0
                      ? w.busy_seconds / s.elapsed_seconds
                      : 0.0;
              s.workers.push_back(worker);
            }
          }
          return s;
        });
  }

  if (pool == nullptr) {
    for (std::size_t i = 0; i < pending.size(); ++i) body(i);
  } else {
    pool->parallel_for(pending.size(), body);
  }
  if (reporter != nullptr) reporter->stop();
  if (errored) throw SpecError(first_error);

  result.complete = true;
  for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
    if (!result.jobs[i].has_value()) {
      result.complete = false;
      continue;
    }
    const Summary& rounds = result.jobs[i]->rounds;
    result.all_rounds.merge(OnlineStats::from_moments(
        rounds.count, rounds.mean, rounds.stddev * rounds.stddev, rounds.min,
        rounds.max));
  }

  // Final sinks are written only for a complete campaign, in job order —
  // deterministic and byte-identical however the campaign was interrupted.
  if (result.complete && !stem.empty()) {
    obs::TraceSpan span(trace, "sink_flush");
    write_campaign_sinks(plan, result.jobs, stem);
  }

  if (telemetry != nullptr && !telemetry->write_trace()) {
    throw SpecError("cannot write trace file '" +
                    telemetry->config().trace_path + "'");
  }
  return result;
}

}  // namespace cobra::scenario
