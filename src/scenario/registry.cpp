// SPDX-License-Identifier: MIT
#include "scenario/registry.hpp"

#include <algorithm>
#include <fstream>
#include <functional>

#include "core/bips.hpp"
#include "core/cobra.hpp"
#include "core/sis.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "protocols/branching_walk.hpp"
#include "protocols/flood.hpp"
#include "protocols/pull.hpp"
#include "protocols/push.hpp"
#include "protocols/push_pull.hpp"
#include "protocols/random_walk.hpp"

namespace cobra::scenario {

const std::string* find_param(const ParamMap& params, std::string_view key) {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string canonical_params(const ParamMap& params) {
  ParamMap sorted = params;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [k, v] : sorted) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

namespace {

/// Tracks which keys a factory consumed so leftovers fail loudly.
class ParamReader {
 public:
  ParamReader(const ParamMap& params, std::string context)
      : params_(params), context_(std::move(context)),
        touched_(params.size(), false) {}

  bool has(std::string_view key) {
    return lookup(key) != nullptr;
  }

  std::string get(std::string_view key, std::string_view fallback) {
    const std::string* v = lookup(key);
    return v != nullptr ? *v : std::string(fallback);
  }

  std::string require(std::string_view key) {
    const std::string* v = lookup(key);
    if (v == nullptr) {
      throw SpecError(context_ + ": missing required parameter '" +
                      std::string(key) + "'");
    }
    return *v;
  }

  std::int64_t get_int(std::string_view key, std::int64_t fallback) {
    const std::string* v = lookup(key);
    return v == nullptr ? fallback : to_int(key, *v);
  }

  std::int64_t require_int(std::string_view key) {
    return to_int(key, require(key));
  }

  std::size_t require_size(std::string_view key) {
    const std::int64_t v = require_int(key);
    if (v < 0) {
      throw SpecError(context_ + ": parameter '" + std::string(key) +
                      "' must be non-negative");
    }
    return static_cast<std::size_t>(v);
  }

  double get_double(std::string_view key, double fallback) {
    const std::string* v = lookup(key);
    return v == nullptr ? fallback : to_double(key, *v);
  }

  double require_double(std::string_view key) {
    return to_double(key, require(key));
  }

  /// 'x'-separated positive integers, e.g. dims = 32x32, offsets = 1x2x5.
  std::vector<std::size_t> require_size_list(std::string_view key) {
    const std::string text = require(key);
    std::vector<std::size_t> out;
    std::size_t begin = 0;
    while (begin <= text.size()) {
      const std::size_t sep = text.find('x', begin);
      const std::size_t end = sep == std::string::npos ? text.size() : sep;
      out.push_back(static_cast<std::size_t>(
          to_int(key, text.substr(begin, end - begin))));
      if (sep == std::string::npos) break;
      begin = sep + 1;
    }
    return out;
  }

  /// Throws if any parameter was never consumed (typo protection).
  void finish() const {
    for (std::size_t i = 0; i < params_.size(); ++i) {
      if (!touched_[i]) {
        throw SpecError(context_ + ": unknown parameter '" +
                        params_[i].first + "'");
      }
    }
  }

 private:
  const std::string* lookup(std::string_view key) {
    for (std::size_t i = 0; i < params_.size(); ++i) {
      if (params_[i].first == key) {
        touched_[i] = true;
        return &params_[i].second;
      }
    }
    return nullptr;
  }

  std::int64_t to_int(std::string_view key, const std::string& text) const {
    std::int64_t value = 0;
    if (!parse_spec_int(text, value)) {
      throw SpecError(context_ + ": parameter '" + std::string(key) +
                      "' expects an integer, got '" + text + "'");
    }
    return value;
  }

  double to_double(std::string_view key, const std::string& text) const {
    double value = 0.0;
    if (!parse_spec_double(text, value)) {
      throw SpecError(context_ + ": parameter '" + std::string(key) +
                      "' expects a number, got '" + text + "'");
    }
    return value;
  }

  const ParamMap& params_;
  std::string context_;
  std::vector<bool> touched_;
};

std::vector<std::uint32_t> to_u32(const std::vector<std::size_t>& values) {
  std::vector<std::uint32_t> out;
  out.reserve(values.size());
  for (const std::size_t v : values) {
    out.push_back(static_cast<std::uint32_t>(v));
  }
  return out;
}

// ---- graph family table ----

using GraphFactory = Graph (*)(ParamReader&, Rng&);

Graph file_graph(ParamReader& p, Rng&) {
  const std::string path = p.require("file");
  EdgeListOptions options;
  options.require_header = p.get_int("require_header", 0) != 0;
  options.dedup = p.get_int("dedup", 1) != 0;
  std::ifstream in(path);
  if (!in) {
    throw SpecError("graph family 'file': cannot open '" + path + "'");
  }
  return read_edge_list(in, "file(" + path + ")", options);
}

struct GraphFamily {
  const char* name;
  /// Accepted parameter keys, null-padded ("family" itself is implied);
  /// the campaign planner validates spec keys against this list.
  const char* keys[4];
  GraphFactory build;
};

const GraphFamily kGraphFamilies[] = {
    {"barabasi_albert",
     {"n", "attach"},
     [](ParamReader& p, Rng& rng) {
       return gen::barabasi_albert(p.require_size("n"), p.require_size("attach"),
                                   rng);
     }},
    {"barbell",
     {"clique", "bridge"},
     [](ParamReader& p, Rng&) {
       return gen::barbell(p.require_size("clique"), p.require_size("bridge"));
     }},
    {"binary_tree",
     {"levels"},
     [](ParamReader& p, Rng&) {
       return gen::binary_tree(p.require_size("levels"));
     }},
    {"circulant",
     {"n", "offsets"},
     [](ParamReader& p, Rng&) {
       return gen::circulant(p.require_size("n"),
                             to_u32(p.require_size_list("offsets")));
     }},
    {"complete",
     {"n"},
     [](ParamReader& p, Rng&) { return gen::complete(p.require_size("n")); }},
    {"complete_bipartite",
     {"a", "b"},
     [](ParamReader& p, Rng&) {
       return gen::complete_bipartite(p.require_size("a"),
                                      p.require_size("b"));
     }},
    {"connected_random_regular",
     {"n", "r"},
     [](ParamReader& p, Rng& rng) {
       return gen::connected_random_regular(p.require_size("n"),
                                            p.require_size("r"), rng);
     }},
    {"cycle",
     {"n"},
     [](ParamReader& p, Rng&) { return gen::cycle(p.require_size("n")); }},
    {"erdos_renyi",
     {"n", "p"},
     [](ParamReader& p, Rng& rng) {
       return gen::erdos_renyi(p.require_size("n"), p.require_double("p"),
                               rng);
     }},
    {"file", {"file", "require_header", "dedup"}, file_graph},
    {"generalized_petersen",
     {"n", "k"},
     [](ParamReader& p, Rng&) {
       return gen::generalized_petersen(p.require_size("n"),
                                        p.require_size("k"));
     }},
    {"grid",
     {"dims", "periodic"},
     [](ParamReader& p, Rng&) {
       return gen::grid(p.require_size_list("dims"),
                        p.get_int("periodic", 0) != 0);
     }},
    {"hypercube",
     {"d"},
     [](ParamReader& p, Rng&) { return gen::hypercube(p.require_size("d")); }},
    {"kneser",
     {"n_set", "k_subset"},
     [](ParamReader& p, Rng&) {
       return gen::kneser(p.require_size("n_set"),
                          p.require_size("k_subset"));
     }},
    {"lollipop",
     {"clique", "path"},
     [](ParamReader& p, Rng&) {
       return gen::lollipop(p.require_size("clique"), p.require_size("path"));
     }},
    {"margulis",
     {"m"},
     [](ParamReader& p, Rng&) { return gen::margulis(p.require_size("m")); }},
    {"paley",
     {"q"},
     [](ParamReader& p, Rng&) { return gen::paley(p.require_size("q")); }},
    {"path",
     {"n"},
     [](ParamReader& p, Rng&) { return gen::path(p.require_size("n")); }},
    {"petersen", {}, [](ParamReader&, Rng&) { return gen::petersen(); }},
    {"random_geometric",
     {"n", "radius"},
     [](ParamReader& p, Rng& rng) {
       return gen::random_geometric(p.require_size("n"),
                                    p.require_double("radius"), rng);
     }},
    {"random_regular",
     {"n", "r", "connected"},
     [](ParamReader& p, Rng& rng) {
       // connected=1 (default) retries until the sample is connected.
       if (p.get_int("connected", 1) != 0) {
         return gen::connected_random_regular(p.require_size("n"),
                                              p.require_size("r"), rng);
       }
       return gen::random_regular(p.require_size("n"), p.require_size("r"),
                                  rng);
     }},
    {"star",
     {"n"},
     [](ParamReader& p, Rng&) { return gen::star(p.require_size("n")); }},
    {"torus",
     {"dims"},
     [](ParamReader& p, Rng&) {
       return gen::torus(p.require_size_list("dims"));
     }},
    {"watts_strogatz",
     {"n", "k", "beta"},
     [](ParamReader& p, Rng& rng) {
       return gen::watts_strogatz(p.require_size("n"), p.require_size("k"),
                                  p.require_double("beta"), rng);
     }},
};

const GraphFamily* find_family(std::string_view name) {
  for (const auto& family : kGraphFamilies) {
    if (name == family.name) return &family;
  }
  return nullptr;
}

// ---- process adapters ----

/// Parses the shared branching spec: integer `k`, or fractional `rho`
/// (expected factor 1 + rho); giving both is an error.
Branching read_branching(ParamReader& p) {
  const bool has_rho = p.has("rho");
  const bool has_k = p.has("k");
  if (has_rho && has_k) {
    throw SpecError("process: give either 'k' (integer branching) or 'rho' "
                    "(fractional), not both");
  }
  if (has_rho) {
    const double rho = p.require_double("rho");
    if (rho < 0.0) {
      throw SpecError("process: 'rho' must be >= 0");
    }
    return Branching::fractional(rho);
  }
  const std::int64_t k = p.get_int("k", 2);
  if (k < 1) {
    throw SpecError("process: 'k' must be >= 1");
  }
  return Branching::fixed(static_cast<unsigned>(k));
}

/// First vertex with an edge — the workspace-construction start (trial
/// starts are rotated by the campaign runner and revalidated on reset).
Vertex first_spreadable(const Graph& g) {
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) > 0) return v;
  }
  throw SpecError("graph '" + g.name() + "' has no edges");
}

class CobraScenario final : public ScenarioProcess {
 public:
  CobraScenario(const Graph& g, const CobraOptions& options)
      : process_(g, first_spreadable(g), options) {}
  SpreadResult run(Vertex start, Rng& rng) override {
    return run_cobra_cover(process_, start, rng);
  }

 private:
  CobraProcess process_;
};

/// BIPS/SIS make every susceptible vertex sample its neighbourhood each
/// round, so — unlike COBRA and the walk-style protocols — isolated
/// vertices anywhere are a hard error; say so with scenario context.
void require_all_degrees(const Graph& g, const char* process_name) {
  if (g.num_vertices() > 0 && g.min_degree() == 0) {
    throw SpecError(std::string("process '") + process_name + "': graph '" +
                    g.name() +
                    "' has isolated vertices, but every vertex samples "
                    "neighbours each round (min degree >= 1 required)");
  }
}

class BipsScenario final : public ScenarioProcess {
 public:
  BipsScenario(const Graph& g, const BipsOptions& options)
      : process_(g, first_spreadable(g), options) {}
  SpreadResult run(Vertex start, Rng& rng) override {
    return run_bips_infection(process_, start, rng);
  }

 private:
  BipsProcess process_;
};

/// Wraps the function-style baselines (push/pull/push-pull/flood/walk).
class FunctionScenario final : public ScenarioProcess {
 public:
  using Fn = std::function<SpreadResult(const Graph&, Vertex, Rng&)>;
  FunctionScenario(const Graph& g, Fn fn) : graph_(&g), fn_(std::move(fn)) {}
  SpreadResult run(Vertex start, Rng& rng) override {
    return fn_(*graph_, start, rng);
  }

 private:
  const Graph* graph_;
  Fn fn_;
};

class BranchingWalkScenario final : public ScenarioProcess {
 public:
  BranchingWalkScenario(const Graph& g, const BranchingWalkOptions& options)
      : graph_(&g), options_(options) {}
  SpreadResult run(Vertex start, Rng& rng) override {
    const BranchingWalkResult r =
        run_branching_walk(*graph_, start, options_, rng);
    SpreadResult out;
    out.completed = r.covered;
    out.rounds = r.rounds;
    out.final_count = r.final_visited;
    out.total_transmissions = r.total_messages;
    return out;
  }

 private:
  const Graph* graph_;
  BranchingWalkOptions options_;
};

class SisScenario final : public ScenarioProcess {
 public:
  SisScenario(const Graph& g, const SisOptions& options)
      : graph_(&g), options_(options) {}
  SpreadResult run(Vertex start, Rng& rng) override {
    const SisResult r = run_sis(*graph_, start, options_, rng);
    SpreadResult out;
    // "Completion" for the source-free epidemic means full infection; both
    // extinction and timeout count as failures in campaign aggregates.
    out.completed = r.outcome == SisOutcome::kFullInfection;
    out.rounds = r.rounds;
    out.final_count = r.final_count;
    out.curve = r.curve;
    return out;
  }

 private:
  const Graph* graph_;
  SisOptions options_;
};

struct ProcessInfo {
  const char* name;
  /// Accepted parameter keys, null-padded ("name" itself is implied).
  const char* keys[4];
};

const ProcessInfo kProcesses[] = {
    {"bips", {"k", "rho", "max_rounds"}},
    {"branching-walk", {"k", "max_rounds", "vertex_cap"}},
    {"cobra", {"k", "rho", "max_rounds"}},
    {"flood", {"max_rounds"}},
    {"pull", {"max_rounds"}},
    {"push", {"max_rounds"}},
    {"push-pull", {"max_rounds"}},
    {"sis", {"k", "rho", "max_rounds"}},
    {"walk", {"max_rounds"}},
};

const ProcessInfo* find_process(std::string_view name) {
  for (const auto& process : kProcesses) {
    if (name == process.name) return &process;
  }
  return nullptr;
}

bool key_listed(const char* const (&keys)[4], std::string_view key) {
  for (const char* candidate : keys) {
    if (candidate == nullptr) break;
    if (key == candidate) return true;
  }
  return false;
}

}  // namespace

std::vector<std::string> graph_families() {
  std::vector<std::string> names;
  for (const auto& family : kGraphFamilies) names.emplace_back(family.name);
  return names;
}

bool is_graph_family(std::string_view name) {
  return find_family(name) != nullptr;
}

Graph build_graph(const ParamMap& params, Rng& rng) {
  const std::string* family_name = find_param(params, "family");
  if (family_name == nullptr) {
    throw SpecError("graph: missing required parameter 'family'");
  }
  const GraphFamily* family = find_family(*family_name);
  if (family == nullptr) {
    throw SpecError("graph: unknown family '" + *family_name +
                    "' (see scenario_runner --list)");
  }
  ParamReader reader(params, "graph family '" + *family_name + "'");
  reader.require("family");  // consumed by dispatch
  Graph g = family->build(reader, rng);
  reader.finish();
  return g;
}

bool graph_family_has_param(std::string_view family, std::string_view key) {
  const GraphFamily* entry = find_family(family);
  return entry != nullptr && key_listed(entry->keys, key);
}

std::vector<std::string> process_names() {
  std::vector<std::string> names;
  for (const auto& process : kProcesses) names.emplace_back(process.name);
  return names;
}

bool is_process_name(std::string_view name) {
  return find_process(name) != nullptr;
}

bool process_has_param(std::string_view name, std::string_view key) {
  const ProcessInfo* entry = find_process(name);
  return entry != nullptr && key_listed(entry->keys, key);
}

std::unique_ptr<ScenarioProcess> make_process(const Graph& g,
                                              const ParamMap& params) {
  const std::string* name = find_param(params, "name");
  if (name == nullptr) {
    throw SpecError("process: missing required parameter 'name'");
  }
  ParamReader reader(params, "process '" + *name + "'");
  reader.require("name");  // consumed by dispatch
  std::unique_ptr<ScenarioProcess> process;
  if (*name == "cobra") {
    CobraOptions options;
    options.branching = read_branching(reader);
    options.max_rounds =
        static_cast<std::size_t>(reader.get_int("max_rounds", 1 << 20));
    process = std::make_unique<CobraScenario>(g, options);
  } else if (*name == "bips") {
    require_all_degrees(g, "bips");
    BipsOptions options;
    options.branching = read_branching(reader);
    options.max_rounds =
        static_cast<std::size_t>(reader.get_int("max_rounds", 1 << 20));
    process = std::make_unique<BipsScenario>(g, options);
  } else if (*name == "sis") {
    require_all_degrees(g, "sis");
    SisOptions options;
    options.branching = read_branching(reader);
    options.max_rounds =
        static_cast<std::size_t>(reader.get_int("max_rounds", 1 << 16));
    process = std::make_unique<SisScenario>(g, options);
  } else if (*name == "branching-walk") {
    BranchingWalkOptions options;
    options.k = static_cast<unsigned>(reader.get_int("k", 2));
    options.max_rounds =
        static_cast<std::size_t>(reader.get_int("max_rounds", 64));
    options.vertex_cap =
        static_cast<std::uint64_t>(reader.get_int("vertex_cap", 1 << 20));
    process = std::make_unique<BranchingWalkScenario>(g, options);
  } else if (*name == "walk") {
    RandomWalkOptions options;
    options.max_steps = static_cast<std::size_t>(
        reader.get_int("max_rounds", std::size_t{1} << 28));
    process = std::make_unique<FunctionScenario>(
        g, [options](const Graph& graph, Vertex start, Rng& rng) {
          return run_walk_cover(graph, start, options, rng);
        });
  } else if (*name == "push") {
    PushOptions options;
    options.max_rounds =
        static_cast<std::size_t>(reader.get_int("max_rounds", 1 << 20));
    process = std::make_unique<FunctionScenario>(
        g, [options](const Graph& graph, Vertex start, Rng& rng) {
          return run_push(graph, start, options, rng);
        });
  } else if (*name == "pull") {
    PullOptions options;
    options.max_rounds =
        static_cast<std::size_t>(reader.get_int("max_rounds", 1 << 20));
    process = std::make_unique<FunctionScenario>(
        g, [options](const Graph& graph, Vertex start, Rng& rng) {
          return run_pull(graph, start, options, rng);
        });
  } else if (*name == "push-pull") {
    PushPullOptions options;
    options.max_rounds =
        static_cast<std::size_t>(reader.get_int("max_rounds", 1 << 20));
    process = std::make_unique<FunctionScenario>(
        g, [options](const Graph& graph, Vertex start, Rng& rng) {
          return run_push_pull(graph, start, options, rng);
        });
  } else if (*name == "flood") {
    FloodOptions options;
    options.max_rounds =
        static_cast<std::size_t>(reader.get_int("max_rounds", 1 << 20));
    process = std::make_unique<FunctionScenario>(
        g, [options](const Graph& graph, Vertex start, Rng&) {
          return run_flood(graph, start, options);
        });
  } else {
    throw SpecError("process: unknown name '" + *name +
                    "' (see scenario_runner --list)");
  }
  reader.finish();
  return process;
}

}  // namespace cobra::scenario
