// SPDX-License-Identifier: MIT
#include "scenario/registry.hpp"

#include <algorithm>
#include <fstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/weights.hpp"
#include "util/param_reader.hpp"

namespace cobra::scenario {

const std::string* find_param(const ParamMap& params, std::string_view key) {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string canonical_params(const ParamMap& params) {
  ParamMap sorted = params;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [k, v] : sorted) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

namespace {

/// Graph-family parameter reader reporting SpecError (shared machinery in
/// util/param_reader.hpp; the process factory uses the same reader with
/// its own error type).
using ParamReader = ::cobra::ParamReader<SpecError>;

std::vector<std::uint32_t> to_u32(const std::vector<std::size_t>& values) {
  std::vector<std::uint32_t> out;
  out.reserve(values.size());
  for (const std::size_t v : values) {
    out.push_back(static_cast<std::uint32_t>(v));
  }
  return out;
}

// ---- graph family table ----

using GraphFactory = Graph (*)(ParamReader&, Rng&);

Graph file_graph(ParamReader& p, Rng&) {
  const std::string path = p.require("file");
  EdgeListOptions options;
  options.require_header = p.get_int("require_header", 0) != 0;
  options.dedup = p.get_int("dedup", 1) != 0;
  // mmap = 1 loads a .cgr zero-copy: the job's CSR arrays are read-only
  // views over the file mapping (Graph::is_mapped()), so huge instances
  // run without materializing the graph in RAM. Only meaningful for .cgr
  // files — edge lists always parse into owned storage.
  const bool use_mmap = p.get_int("mmap", 0) != 0;
  // Binary CSR instances load directly (campaigns reuse one generated
  // .cgr across runs instead of re-parsing or regenerating); detection is
  // by extension or magic so an edge list named foo.cgr still errors
  // loudly inside read_cgr rather than being misparsed.
  if (std::string_view(path).ends_with(".cgr") || is_cgr_file(path)) {
    try {
      return use_mmap ? map_cgr(path) : read_cgr(path);
    } catch (const std::invalid_argument& e) {
      throw SpecError("graph family 'file': " + std::string(e.what()));
    }
  }
  if (use_mmap) {
    throw SpecError("graph family 'file': mmap = 1 requires a .cgr file");
  }
  std::ifstream in(path);
  if (!in) {
    throw SpecError("graph family 'file': cannot open '" + path + "'");
  }
  return read_edge_list(in, "file(" + path + ")", options);
}

/// (n, 2m) size prediction for estimate_graph_memory; expectation for
/// random families.
struct SizeEstimate {
  std::uint64_t n = 0;
  std::uint64_t endpoints = 0;
};

using GraphEstimator = SizeEstimate (*)(ParamReader&);

SizeEstimate est_regular(std::uint64_t n, std::uint64_t r) {
  return {n, n * r};
}

struct GraphFamily {
  const char* name;
  /// Accepted parameter keys, null-padded ("family" itself is implied);
  /// the campaign planner validates spec keys against this list.
  const char* keys[4];
  GraphFactory build;
  /// Size prediction for --dry-run memory estimates; nullptr = unknown
  /// (family=file).
  GraphEstimator estimate = nullptr;
};

const GraphFamily kGraphFamilies[] = {
    {"barabasi_albert",
     {"n", "attach"},
     [](ParamReader& p, Rng& rng) {
       return gen::barabasi_albert(p.require_size("n"), p.require_size("attach"),
                                   rng);
     },
     [](ParamReader& p) -> SizeEstimate {
       const std::uint64_t n = p.require_size("n");
       const std::uint64_t a = p.require_size("attach");
       if (n < a + 1) return {n, 0};
       return {n, a * (a + 1) + 2 * (n - a - 1) * a};
     }},
    {"barbell",
     {"clique", "bridge"},
     [](ParamReader& p, Rng&) {
       return gen::barbell(p.require_size("clique"), p.require_size("bridge"));
     },
     [](ParamReader& p) -> SizeEstimate {
       const std::uint64_t c = p.require_size("clique");
       const std::uint64_t b = p.require_size("bridge");
       return {2 * c + b, 2 * (c * (c - 1) + b + 1)};
     }},
    {"binary_tree",
     {"levels"},
     [](ParamReader& p, Rng&) {
       return gen::binary_tree(p.require_size("levels"));
     },
     [](ParamReader& p) -> SizeEstimate {
       const std::uint64_t n =
           (std::uint64_t{1} << std::min<std::size_t>(p.require_size("levels"),
                                                      62)) -
           1;
       return {n, n > 0 ? 2 * (n - 1) : 0};
     }},
    {"circulant",
     {"n", "offsets"},
     [](ParamReader& p, Rng&) {
       return gen::circulant(p.require_size("n"),
                             to_u32(p.require_size_list("offsets")));
     },
     [](ParamReader& p) -> SizeEstimate {
       const std::uint64_t n = p.require_size("n");
       std::uint64_t edges = 0;
       for (const std::size_t s : p.require_size_list("offsets")) {
         edges += (2 * s == n) ? n / 2 : n;
       }
       return {n, 2 * edges};
     }},
    {"complete",
     {"n"},
     [](ParamReader& p, Rng&) { return gen::complete(p.require_size("n")); },
     [](ParamReader& p) -> SizeEstimate {
       const std::uint64_t n = p.require_size("n");
       return {n, n * (n - 1)};
     }},
    {"complete_bipartite",
     {"a", "b"},
     [](ParamReader& p, Rng&) {
       return gen::complete_bipartite(p.require_size("a"),
                                      p.require_size("b"));
     },
     [](ParamReader& p) -> SizeEstimate {
       const std::uint64_t a = p.require_size("a");
       const std::uint64_t b = p.require_size("b");
       return {a + b, 2 * a * b};
     }},
    {"connected_random_regular",
     {"n", "r"},
     [](ParamReader& p, Rng& rng) {
       return gen::connected_random_regular(p.require_size("n"),
                                            p.require_size("r"), rng);
     },
     [](ParamReader& p) -> SizeEstimate {
       return est_regular(p.require_size("n"), p.require_size("r"));
     }},
    {"cycle",
     {"n"},
     [](ParamReader& p, Rng&) { return gen::cycle(p.require_size("n")); },
     [](ParamReader& p) -> SizeEstimate {
       const std::uint64_t n = p.require_size("n");
       return {n, 2 * n};
     }},
    {"erdos_renyi",
     {"n", "p"},
     [](ParamReader& p, Rng& rng) {
       return gen::erdos_renyi(p.require_size("n"), p.require_double("p"),
                               rng);
     },
     [](ParamReader& p) -> SizeEstimate {
       const std::uint64_t n = p.require_size("n");
       const double prob = p.require_double("p");
       const double pairs = 0.5 * static_cast<double>(n) *
                            static_cast<double>(n > 0 ? n - 1 : 0);
       return {n, static_cast<std::uint64_t>(2.0 * prob * pairs)};
     }},
    {"file", {"file", "require_header", "dedup", "mmap"}, file_graph},
    {"generalized_petersen",
     {"n", "k"},
     [](ParamReader& p, Rng&) {
       return gen::generalized_petersen(p.require_size("n"),
                                        p.require_size("k"));
     },
     [](ParamReader& p) -> SizeEstimate {
       const std::uint64_t n = p.require_size("n");
       p.require_size("k");
       return {2 * n, 6 * n};
     }},
    {"grid",
     {"dims", "periodic"},
     [](ParamReader& p, Rng&) {
       return gen::grid(p.require_size_list("dims"),
                        p.get_int("periodic", 0) != 0);
     },
     [](ParamReader& p) -> SizeEstimate {
       const auto dims = p.require_size_list("dims");
       const bool periodic = p.get_int("periodic", 0) != 0;
       std::uint64_t n = 1;
       for (const std::size_t side : dims) n *= side;
       std::uint64_t edges = 0;
       for (const std::size_t side : dims) {
         if (side == 0) return {0, 0};
         edges += periodic ? n : n - n / side;
       }
       return {n, 2 * edges};
     }},
    {"hypercube",
     {"d"},
     [](ParamReader& p, Rng&) { return gen::hypercube(p.require_size("d")); },
     [](ParamReader& p) -> SizeEstimate {
       const std::uint64_t d = std::min<std::size_t>(p.require_size("d"), 62);
       const std::uint64_t n = std::uint64_t{1} << d;
       return {n, n * d};
     }},
    {"kneser",
     {"n_set", "k_subset"},
     [](ParamReader& p, Rng&) {
       return gen::kneser(p.require_size("n_set"),
                          p.require_size("k_subset"));
     },
     [](ParamReader& p) -> SizeEstimate {
       const std::uint64_t ns = p.require_size("n_set");
       const std::uint64_t k = p.require_size("k_subset");
       const auto binom = [](std::uint64_t nn, std::uint64_t kk) {
         if (kk > nn) return std::uint64_t{0};
         double acc = 1.0;
         for (std::uint64_t i = 0; i < kk; ++i) {
           acc *= static_cast<double>(nn - i) / static_cast<double>(i + 1);
           if (acc > 1e18) return std::uint64_t{1} << 62;
         }
         return static_cast<std::uint64_t>(acc);
       };
       const std::uint64_t n = binom(ns, k);
       return {n, n * binom(ns - k, k)};
     }},
    {"lollipop",
     {"clique", "path"},
     [](ParamReader& p, Rng&) {
       return gen::lollipop(p.require_size("clique"), p.require_size("path"));
     },
     [](ParamReader& p) -> SizeEstimate {
       const std::uint64_t c = p.require_size("clique");
       const std::uint64_t path = p.require_size("path");
       return {c + path, c * (c - 1) + 2 * path};
     }},
    {"margulis",
     {"m"},
     [](ParamReader& p, Rng&) { return gen::margulis(p.require_size("m")); },
     [](ParamReader& p) -> SizeEstimate {
       // Template upper bound: 8 half-edges per vertex before loop and
       // coincidence drops.
       const std::uint64_t m = p.require_size("m");
       return {m * m, 8 * m * m};
     }},
    {"paley",
     {"q"},
     [](ParamReader& p, Rng&) { return gen::paley(p.require_size("q")); },
     [](ParamReader& p) -> SizeEstimate {
       const std::uint64_t q = p.require_size("q");
       return {q, q > 0 ? q * ((q - 1) / 2) : 0};
     }},
    {"path",
     {"n"},
     [](ParamReader& p, Rng&) { return gen::path(p.require_size("n")); },
     [](ParamReader& p) -> SizeEstimate {
       const std::uint64_t n = p.require_size("n");
       return {n, n > 0 ? 2 * (n - 1) : 0};
     }},
    {"petersen", {}, [](ParamReader&, Rng&) { return gen::petersen(); },
     [](ParamReader&) -> SizeEstimate { return {10, 30}; }},
    {"random_geometric",
     {"n", "radius"},
     [](ParamReader& p, Rng& rng) {
       return gen::random_geometric(p.require_size("n"),
                                    p.require_double("radius"), rng);
     },
     [](ParamReader& p) -> SizeEstimate {
       const std::uint64_t n = p.require_size("n");
       const double radius = p.require_double("radius");
       const double pairs = 0.5 * static_cast<double>(n) *
                            static_cast<double>(n > 0 ? n - 1 : 0);
       const double pi = 3.14159265358979323846;
       return {n, static_cast<std::uint64_t>(2.0 * pairs * pi * radius *
                                             radius)};
     }},
    {"random_regular",
     {"n", "r", "connected"},
     [](ParamReader& p, Rng& rng) {
       // connected=1 (default) retries until the sample is connected.
       if (p.get_int("connected", 1) != 0) {
         return gen::connected_random_regular(p.require_size("n"),
                                              p.require_size("r"), rng);
       }
       return gen::random_regular(p.require_size("n"), p.require_size("r"),
                                  rng);
     },
     [](ParamReader& p) -> SizeEstimate {
       return est_regular(p.require_size("n"), p.require_size("r"));
     }},
    {"star",
     {"n"},
     [](ParamReader& p, Rng&) { return gen::star(p.require_size("n")); },
     [](ParamReader& p) -> SizeEstimate {
       const std::uint64_t n = p.require_size("n");
       return {n, n > 0 ? 2 * (n - 1) : 0};
     }},
    {"torus",
     {"dims"},
     [](ParamReader& p, Rng&) {
       return gen::torus(p.require_size_list("dims"));
     },
     [](ParamReader& p) -> SizeEstimate {
       const auto dims = p.require_size_list("dims");
       std::uint64_t n = 1;
       for (const std::size_t side : dims) n *= side;
       return {n, 2 * n * dims.size()};
     }},
    {"watts_strogatz",
     {"n", "k", "beta"},
     [](ParamReader& p, Rng& rng) {
       return gen::watts_strogatz(p.require_size("n"), p.require_size("k"),
                                  p.require_double("beta"), rng);
     },
     [](ParamReader& p) -> SizeEstimate {
       const std::uint64_t n = p.require_size("n");
       const std::uint64_t k = p.require_size("k");
       p.get_double("beta", 0.0);  // rewiring preserves the edge count
       return {n, n * k};
     }},
};

const GraphFamily* find_family(std::string_view name) {
  for (const auto& family : kGraphFamilies) {
    if (name == family.name) return &family;
  }
  return nullptr;
}

bool key_listed(const char* const (&keys)[4], std::string_view key) {
  for (const char* candidate : keys) {
    if (candidate == nullptr) break;
    if (key == candidate) return true;
  }
  return false;
}

}  // namespace

std::vector<std::string> graph_families() {
  std::vector<std::string> names;
  for (const auto& family : kGraphFamilies) names.emplace_back(family.name);
  return names;
}

bool is_graph_family(std::string_view name) {
  return find_family(name) != nullptr;
}

Graph build_graph(const ParamMap& params, Rng& rng) {
  const std::string* family_name = find_param(params, "family");
  if (family_name == nullptr) {
    throw SpecError("graph: missing required parameter 'family'");
  }
  const GraphFamily* family = find_family(*family_name);
  if (family == nullptr) {
    throw SpecError("graph: unknown family '" + *family_name +
                    "' (see scenario_runner --list)");
  }
  ParamReader reader(params, "graph family '" + *family_name + "'");
  reader.require("family");  // consumed by dispatch
  // Universal weight hooks, consumed before family dispatch:
  //   weight = uniform|exp  synthesizes deterministic per-edge weights on
  //                         any family (graph/weights.hpp);
  //   weight = file         asserts the loaded file carried weights;
  //   weight_seed           pins the synthesis seed (default: one draw
  //                         from the job's graph RNG, taken after the
  //                         family build so unweighted jobs see an
  //                         unchanged stream).
  const std::string weight_kind = reader.get("weight", "none");
  const bool seed_given = reader.has("weight_seed");
  const std::int64_t weight_seed =
      seed_given ? reader.require_int("weight_seed") : 0;
  // Validate the weight spec BEFORE the family build: these are pure
  // string checks, and surfacing a typo after a multi-minute n=2^24
  // generation would waste the whole build.
  std::optional<gen::WeightKind> synth_kind;
  if (weight_kind != "none" && weight_kind != "file") {
    synth_kind = gen::parse_weight_kind(weight_kind);
    if (!synth_kind.has_value()) {
      throw SpecError("graph: unknown weight kind '" + weight_kind +
                      "' (none, uniform, exp, file)");
    }
  }
  if (seed_given && !synth_kind.has_value()) {
    throw SpecError("graph: 'weight_seed' requires weight = uniform|exp");
  }
  Graph g = family->build(reader, rng);
  reader.finish();
  if (weight_kind == "file") {
    if (!g.is_weighted()) {
      throw SpecError(
          "graph: weight = file, but the loaded graph carries no weights "
          "(needs family = file with a weighted edge list or .cgr v2)");
    }
  } else if (synth_kind.has_value()) {
    const std::uint64_t seed =
        seed_given ? static_cast<std::uint64_t>(weight_seed) : rng();
    gen::generate_weights(g, *synth_kind, seed);
  }
  return g;
}

GraphMemoryEstimate estimate_graph_memory(const ParamMap& params) {
  GraphMemoryEstimate out;
  const std::string* family_name = find_param(params, "family");
  if (family_name == nullptr) return out;
  // family=file on a .cgr: the header gives *exact* sizes, and mmap = 1
  // marks the file-backed portion so --dry-run can report mapped vs
  // resident bytes separately.
  if (*family_name == "file") {
    const std::string* path = find_param(params, "file");
    if (path == nullptr || !is_cgr_file(*path)) return out;
    CgrInfo info;
    try {
      info = read_cgr_info(*path);
    } catch (const std::invalid_argument&) {
      return out;  // corrupt file — surfaces when the job actually runs
    }
    out.known = true;
    out.n = info.n;
    out.endpoints = info.endpoints;
    out.offset_bytes = info.wide ? 8 : 4;
    out.csr_bytes = (info.n + 1) * out.offset_bytes + info.endpoints * 4;
    const std::string* weight = find_param(params, "weight");
    const bool synth =
        weight != nullptr && (*weight == "uniform" || *weight == "exp");
    if (synth || info.weighted) {
      out.weight_bytes = info.endpoints * sizeof(float);
    }
    const std::string* mmap_param = find_param(params, "mmap");
    if (mmap_param != nullptr && *mmap_param != "0") {
      // Synthesized weights replace the file's and live in owned storage,
      // so only file-carried weights stay mapped.
      out.mapped_bytes =
          out.csr_bytes + (info.weighted && !synth ? out.weight_bytes : 0);
    }
    return out;
  }
  const GraphFamily* family = find_family(*family_name);
  if (family == nullptr || family->estimate == nullptr) return out;
  SizeEstimate size;
  try {
    ParamReader reader(params, "estimate '" + *family_name + "'");
    reader.require("family");
    size = family->estimate(reader);
    // No reader.finish(): estimators only read the keys that determine
    // size; leftover keys are the planner's concern, not the estimate's.
  } catch (const SpecError&) {
    return out;  // malformed values surface when the job actually runs
  }
  out.known = true;
  out.n = size.n;
  out.endpoints = size.endpoints;
  out.offset_bytes = csr_offsets_fit_32bit(size.endpoints) ? 4 : 8;
  out.csr_bytes = (size.n + 1) * out.offset_bytes + size.endpoints * 4;
  // Synthetic weights add one float per half-edge (8m bytes). weight=file
  // keeps whatever the file holds; file-family sizes are unknown anyway.
  const std::string* weight = find_param(params, "weight");
  if (weight != nullptr && (*weight == "uniform" || *weight == "exp")) {
    out.weight_bytes = size.endpoints * sizeof(float);
  }
  return out;
}

/// The weight hooks are accepted by every family (build_graph consumes
/// them before family dispatch).
bool is_universal_graph_key(std::string_view key) {
  return key == "weight" || key == "weight_seed";
}

bool graph_family_has_param(std::string_view family, std::string_view key) {
  const GraphFamily* entry = find_family(family);
  if (entry == nullptr) return false;
  return is_universal_graph_key(key) || key_listed(entry->keys, key);
}

std::vector<std::string> graph_family_param_keys(std::string_view family) {
  std::vector<std::string> keys;
  const GraphFamily* entry = find_family(family);
  if (entry == nullptr) return keys;
  for (const char* key : entry->keys) {
    if (key == nullptr) break;
    keys.emplace_back(key);
  }
  keys.emplace_back("weight");
  keys.emplace_back("weight_seed");
  return keys;
}

std::vector<std::string> process_names() {
  return ::cobra::process_names();
}

bool is_process_name(std::string_view name) {
  return ::cobra::is_process_name(name);
}

bool process_has_param(std::string_view name, std::string_view key) {
  return ::cobra::process_has_param(name, key);
}

std::unique_ptr<Process> make_process(const Graph& g, const ParamMap& params) {
  try {
    return ::cobra::make_process(g, params);
  } catch (const ProcessFactoryError& e) {
    // Same diagnostics, one error type for the campaign planner.
    throw SpecError(e.what());
  }
}

}  // namespace cobra::scenario
