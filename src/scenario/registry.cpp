// SPDX-License-Identifier: MIT
#include "scenario/registry.hpp"

#include <algorithm>
#include <fstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/param_reader.hpp"

namespace cobra::scenario {

const std::string* find_param(const ParamMap& params, std::string_view key) {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string canonical_params(const ParamMap& params) {
  ParamMap sorted = params;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [k, v] : sorted) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

namespace {

/// Graph-family parameter reader reporting SpecError (shared machinery in
/// util/param_reader.hpp; the process factory uses the same reader with
/// its own error type).
using ParamReader = ::cobra::ParamReader<SpecError>;

std::vector<std::uint32_t> to_u32(const std::vector<std::size_t>& values) {
  std::vector<std::uint32_t> out;
  out.reserve(values.size());
  for (const std::size_t v : values) {
    out.push_back(static_cast<std::uint32_t>(v));
  }
  return out;
}

// ---- graph family table ----

using GraphFactory = Graph (*)(ParamReader&, Rng&);

Graph file_graph(ParamReader& p, Rng&) {
  const std::string path = p.require("file");
  EdgeListOptions options;
  options.require_header = p.get_int("require_header", 0) != 0;
  options.dedup = p.get_int("dedup", 1) != 0;
  std::ifstream in(path);
  if (!in) {
    throw SpecError("graph family 'file': cannot open '" + path + "'");
  }
  return read_edge_list(in, "file(" + path + ")", options);
}

struct GraphFamily {
  const char* name;
  /// Accepted parameter keys, null-padded ("family" itself is implied);
  /// the campaign planner validates spec keys against this list.
  const char* keys[4];
  GraphFactory build;
};

const GraphFamily kGraphFamilies[] = {
    {"barabasi_albert",
     {"n", "attach"},
     [](ParamReader& p, Rng& rng) {
       return gen::barabasi_albert(p.require_size("n"), p.require_size("attach"),
                                   rng);
     }},
    {"barbell",
     {"clique", "bridge"},
     [](ParamReader& p, Rng&) {
       return gen::barbell(p.require_size("clique"), p.require_size("bridge"));
     }},
    {"binary_tree",
     {"levels"},
     [](ParamReader& p, Rng&) {
       return gen::binary_tree(p.require_size("levels"));
     }},
    {"circulant",
     {"n", "offsets"},
     [](ParamReader& p, Rng&) {
       return gen::circulant(p.require_size("n"),
                             to_u32(p.require_size_list("offsets")));
     }},
    {"complete",
     {"n"},
     [](ParamReader& p, Rng&) { return gen::complete(p.require_size("n")); }},
    {"complete_bipartite",
     {"a", "b"},
     [](ParamReader& p, Rng&) {
       return gen::complete_bipartite(p.require_size("a"),
                                      p.require_size("b"));
     }},
    {"connected_random_regular",
     {"n", "r"},
     [](ParamReader& p, Rng& rng) {
       return gen::connected_random_regular(p.require_size("n"),
                                            p.require_size("r"), rng);
     }},
    {"cycle",
     {"n"},
     [](ParamReader& p, Rng&) { return gen::cycle(p.require_size("n")); }},
    {"erdos_renyi",
     {"n", "p"},
     [](ParamReader& p, Rng& rng) {
       return gen::erdos_renyi(p.require_size("n"), p.require_double("p"),
                               rng);
     }},
    {"file", {"file", "require_header", "dedup"}, file_graph},
    {"generalized_petersen",
     {"n", "k"},
     [](ParamReader& p, Rng&) {
       return gen::generalized_petersen(p.require_size("n"),
                                        p.require_size("k"));
     }},
    {"grid",
     {"dims", "periodic"},
     [](ParamReader& p, Rng&) {
       return gen::grid(p.require_size_list("dims"),
                        p.get_int("periodic", 0) != 0);
     }},
    {"hypercube",
     {"d"},
     [](ParamReader& p, Rng&) { return gen::hypercube(p.require_size("d")); }},
    {"kneser",
     {"n_set", "k_subset"},
     [](ParamReader& p, Rng&) {
       return gen::kneser(p.require_size("n_set"),
                          p.require_size("k_subset"));
     }},
    {"lollipop",
     {"clique", "path"},
     [](ParamReader& p, Rng&) {
       return gen::lollipop(p.require_size("clique"), p.require_size("path"));
     }},
    {"margulis",
     {"m"},
     [](ParamReader& p, Rng&) { return gen::margulis(p.require_size("m")); }},
    {"paley",
     {"q"},
     [](ParamReader& p, Rng&) { return gen::paley(p.require_size("q")); }},
    {"path",
     {"n"},
     [](ParamReader& p, Rng&) { return gen::path(p.require_size("n")); }},
    {"petersen", {}, [](ParamReader&, Rng&) { return gen::petersen(); }},
    {"random_geometric",
     {"n", "radius"},
     [](ParamReader& p, Rng& rng) {
       return gen::random_geometric(p.require_size("n"),
                                    p.require_double("radius"), rng);
     }},
    {"random_regular",
     {"n", "r", "connected"},
     [](ParamReader& p, Rng& rng) {
       // connected=1 (default) retries until the sample is connected.
       if (p.get_int("connected", 1) != 0) {
         return gen::connected_random_regular(p.require_size("n"),
                                              p.require_size("r"), rng);
       }
       return gen::random_regular(p.require_size("n"), p.require_size("r"),
                                  rng);
     }},
    {"star",
     {"n"},
     [](ParamReader& p, Rng&) { return gen::star(p.require_size("n")); }},
    {"torus",
     {"dims"},
     [](ParamReader& p, Rng&) {
       return gen::torus(p.require_size_list("dims"));
     }},
    {"watts_strogatz",
     {"n", "k", "beta"},
     [](ParamReader& p, Rng& rng) {
       return gen::watts_strogatz(p.require_size("n"), p.require_size("k"),
                                  p.require_double("beta"), rng);
     }},
};

const GraphFamily* find_family(std::string_view name) {
  for (const auto& family : kGraphFamilies) {
    if (name == family.name) return &family;
  }
  return nullptr;
}

bool key_listed(const char* const (&keys)[4], std::string_view key) {
  for (const char* candidate : keys) {
    if (candidate == nullptr) break;
    if (key == candidate) return true;
  }
  return false;
}

}  // namespace

std::vector<std::string> graph_families() {
  std::vector<std::string> names;
  for (const auto& family : kGraphFamilies) names.emplace_back(family.name);
  return names;
}

bool is_graph_family(std::string_view name) {
  return find_family(name) != nullptr;
}

Graph build_graph(const ParamMap& params, Rng& rng) {
  const std::string* family_name = find_param(params, "family");
  if (family_name == nullptr) {
    throw SpecError("graph: missing required parameter 'family'");
  }
  const GraphFamily* family = find_family(*family_name);
  if (family == nullptr) {
    throw SpecError("graph: unknown family '" + *family_name +
                    "' (see scenario_runner --list)");
  }
  ParamReader reader(params, "graph family '" + *family_name + "'");
  reader.require("family");  // consumed by dispatch
  Graph g = family->build(reader, rng);
  reader.finish();
  return g;
}

bool graph_family_has_param(std::string_view family, std::string_view key) {
  const GraphFamily* entry = find_family(family);
  return entry != nullptr && key_listed(entry->keys, key);
}

std::vector<std::string> graph_family_param_keys(std::string_view family) {
  std::vector<std::string> keys;
  const GraphFamily* entry = find_family(family);
  if (entry == nullptr) return keys;
  for (const char* key : entry->keys) {
    if (key == nullptr) break;
    keys.emplace_back(key);
  }
  return keys;
}

std::vector<std::string> process_names() {
  return ::cobra::process_names();
}

bool is_process_name(std::string_view name) {
  return ::cobra::is_process_name(name);
}

bool process_has_param(std::string_view name, std::string_view key) {
  return ::cobra::process_has_param(name, key);
}

std::unique_ptr<Process> make_process(const Graph& g, const ParamMap& params) {
  try {
    return ::cobra::make_process(g, params);
  } catch (const ProcessFactoryError& e) {
    // Same diagnostics, one error type for the campaign planner.
    throw SpecError(e.what());
  }
}

}  // namespace cobra::scenario
